package sabre

import (
	"testing"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// TestAssembledSharingMatchesFresh pins the assembly-sharing contract: one
// Assembly fed through InitialLayoutAssembled and then reused for several
// RemapAssembled calls produces outputs byte-identical to the per-call
// Remap/InitialLayout paths that assemble from scratch.
func TestAssembledSharingMatchesFresh(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(11, 12, 400)
	asm := circuit.Assemble(c)

	freshLay, err := InitialLayout(c, dev, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharedLay, err := InitialLayoutAssembled(asm, dev, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !freshLay.Equal(sharedLay) {
		t.Fatalf("shared-assembly initial layout differs: %v vs %v", freshLay, sharedLay)
	}

	fresh, err := Remap(c, dev, freshLay, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // reuse the same assembly twice
		shared, err := RemapAssembled(asm, dev, sharedLay, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.Circuit.Equal(shared.Circuit) {
			t.Fatalf("reuse %d: shared-assembly output differs from fresh", i)
		}
		if !fresh.FinalLayout.Equal(shared.FinalLayout) || fresh.SwapCount != shared.SwapCount {
			t.Fatalf("reuse %d: final layout or swap count differs", i)
		}
	}
}

// TestLayoutOnlyPassMatchesFullRun pins the discard ("layout-only") mode the
// initial-layout passes run in: routing never reads the emitted output, so a
// discarded pass must land on the same final layout and swap count as a full
// run, while emitting nothing.
func TestLayoutOnlyPassMatchesFullRun(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	for seed := int64(1); seed <= 5; seed++ {
		c := randCircuit(seed, 9, 250)
		asm := circuit.Assemble(c)
		start := arch.NewTrivialLayout(c.NumQubits, dev.NumQubits)

		full, err := remapAssembled(asm, dev, start, Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := remapAssembled(asm, dev, start, Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if !full.FinalLayout.Equal(lay.FinalLayout) {
			t.Fatalf("seed %d: layout-only final layout differs", seed)
		}
		if full.SwapCount != lay.SwapCount {
			t.Fatalf("seed %d: swap count %d != %d", seed, lay.SwapCount, full.SwapCount)
		}
		if len(lay.Circuit.Gates) != 0 {
			t.Fatalf("seed %d: layout-only pass emitted %d gates", seed, len(lay.Circuit.Gates))
		}
	}
}

// TestDepthBoundDisablesDiscard: a depth-bounded run must keep emitting (the
// bound tracks emitted gates), even if a caller asks for layout-only mode.
func TestDepthBoundDisablesDiscard(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := randCircuit(3, 8, 120)
	asm := circuit.Assemble(c)
	bound := &arch.DepthBound{}
	res, err := remapAssembled(asm, dev, nil, Options{DepthBound: bound}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Circuit.Gates) == 0 {
		t.Fatal("depth-bounded run emitted nothing despite discard request")
	}
}
