package sabre

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/schedule"
)

func mustRemap(t *testing.T, c *circuit.Circuit, dev *arch.Device, initial *arch.Layout, opts Options) *Result {
	t.Helper()
	res, err := Remap(c, dev, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.Gates {
		if g.Op.TwoQubit() && !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("non-compliant output gate %v", g)
		}
	}
	return res
}

func TestCompliantCircuitPassesThrough(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4).H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount != 0 {
		t.Errorf("SwapCount = %d, want 0", res.SwapCount)
	}
	if res.Circuit.Len() != c.Len() {
		t.Errorf("output has %d gates, want %d", res.Circuit.Len(), c.Len())
	}
}

func TestRoutesDistantGate(t *testing.T) {
	dev := arch.Linear(5)
	c := circuit.New(5).CX(0, 4)
	res := mustRemap(t, c, dev, nil, Options{})
	if res.SwapCount < 3 {
		t.Errorf("SwapCount = %d, want >= 3 for distance 4", res.SwapCount)
	}
	nCX := 0
	for _, g := range res.Circuit.Gates {
		if g.Op == circuit.OpCX {
			nCX++
		}
	}
	if nCX != 1 {
		t.Errorf("CX count = %d, want 1", nCX)
	}
}

func TestGateConservation(t *testing.T) {
	f := func(seed int64) bool {
		dev := arch.IBMQ20Tokyo()
		c := randCircuit(seed, 8, 60)
		res, err := Remap(c, dev, nil, Options{})
		if err != nil {
			return false
		}
		in := c.CountOps()
		out := map[circuit.Op]int{}
		for _, g := range res.Circuit.Gates {
			if g.Op != circuit.OpSwap {
				out[g.Op]++
			}
		}
		for op, n := range in {
			if out[op] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDependencyOrderPreserved(t *testing.T) {
	// SABRE may interleave independent (disjoint-qubit) gates, but gates
	// sharing a qubit must keep their program order: un-mapping its output
	// must yield a dependency-respecting reordering of the input.
	f := func(seed int64) bool {
		dev := arch.Grid("g", 3, 3)
		c := randCircuit(seed, 6, 40)
		res, err := Remap(c, dev, nil, Options{})
		if err != nil {
			return false
		}
		l := res.InitialLayout.Clone()
		var logical []circuit.Gate
		for _, g := range res.Circuit.Gates {
			if g.Op == circuit.OpSwap {
				l.SwapPhysical(g.Qubits[0], g.Qubits[1])
				continue
			}
			lg := g.Remap(func(p int) int { return l.Log(p) })
			for _, q := range lg.Qubits {
				if q < 0 {
					return false
				}
			}
			logical = append(logical, lg)
		}
		if len(logical) != c.Len() {
			return false
		}
		// Greedy match: each recovered gate consumes the earliest
		// unmatched input gate it equals, and may only skip over
		// unmatched gates on disjoint qubits.
		used := make([]bool, c.Len())
		for _, lg := range logical {
			matched := false
			for j, in := range c.Gates {
				if used[j] {
					continue
				}
				if in.Equal(lg) {
					used[j] = true
					matched = true
					break
				}
				if in.SharesQubit(lg) {
					return false
				}
			}
			if !matched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFinalLayoutTracksSwaps(t *testing.T) {
	dev := arch.Linear(4)
	c := circuit.New(4).CX(0, 3)
	res := mustRemap(t, c, dev, nil, Options{})
	replay := res.InitialLayout.Clone()
	for _, g := range res.Circuit.Gates {
		if g.Op == circuit.OpSwap {
			replay.SwapPhysical(g.Qubits[0], g.Qubits[1])
		}
	}
	if !replay.Equal(res.FinalLayout) {
		t.Error("swap replay does not reproduce FinalLayout")
	}
}

func TestDeterminism(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := randCircuit(5, 10, 100)
	r1 := mustRemap(t, c, dev, nil, Options{})
	r2 := mustRemap(t, c, dev, nil, Options{})
	if !r1.Circuit.Equal(r2.Circuit) {
		t.Error("SABRE is not deterministic")
	}
}

func TestAdversarialAllToAll(t *testing.T) {
	for _, dev := range []*arch.Device{arch.Linear(5), arch.Ring(6), arch.Grid("g", 2, 3)} {
		n := dev.NumQubits
		c := circuit.New(n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					c.CX(a, b)
				}
			}
		}
		res := mustRemap(t, c, dev, nil, Options{})
		nCX := 0
		for _, g := range res.Circuit.Gates {
			if g.Op == circuit.OpCX {
				nCX++
			}
		}
		if nCX != n*(n-1) {
			t.Errorf("%s: %d CX, want %d", dev.Name, nCX, n*(n-1))
		}
	}
}

func TestRemapErrors(t *testing.T) {
	dev := arch.Linear(3)
	if _, err := Remap(circuit.New(5), dev, nil, Options{}); err == nil {
		t.Error("oversized circuit accepted")
	}
	if _, err := Remap(circuit.New(3).CCX(0, 1, 2), dev, nil, Options{}); err == nil {
		t.Error("compound gate accepted")
	}
	l := arch.NewTrivialLayout(2, 3)
	if _, err := Remap(circuit.New(3).H(0), dev, l, Options{}); err == nil {
		t.Error("mismatched layout accepted")
	}
	split, _ := arch.NewDevice("split", 4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Remap(circuit.New(2).CX(0, 1), split, nil, Options{}); err == nil {
		t.Error("disconnected device accepted")
	}
}

func TestInitialLayoutReverseTraversal(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(7, 8, 60)
	l, err := InitialLayout(c, dev, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NumLogical() != 8 || l.NumPhysical() != 20 {
		t.Errorf("layout shape %d/%d", l.NumLogical(), l.NumPhysical())
	}
	// Deterministic for a fixed seed.
	l2, err := InitialLayout(c, dev, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Equal(l2) {
		t.Error("InitialLayout not deterministic for fixed seed")
	}
	// Running from the tuned layout should not need more swaps than the
	// tuned layout search itself found necessary — weak sanity: it runs.
	if _, err := Remap(c, dev, l, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialLayoutImprovesOnAverage(t *testing.T) {
	// Over a few seeds, the reverse-traversal layout should beat the
	// trivial layout's swap count more often than not on a structured
	// workload. This is a statistical smoke test, not a strict invariant.
	dev := arch.IBMQ16Melbourne()
	c := qftLike(8)
	trivialRes := mustRemap(t, c, dev, nil, Options{})
	better := 0
	const tries = 5
	for seed := int64(0); seed < tries; seed++ {
		l, err := InitialLayout(c, dev, seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := mustRemap(t, c, dev, l, Options{})
		if res.SwapCount <= trivialRes.SwapCount {
			better++
		}
	}
	if better == 0 {
		t.Errorf("reverse-traversal layout never matched trivial (trivial=%d swaps)", trivialRes.SwapCount)
	}
}

func TestExtendedSetLookahead(t *testing.T) {
	// A circuit where greedy front-only routing is misled: the extended
	// set must pull the swap toward future gates. We only check that
	// enabling the extended set does not increase the swap count on a
	// structured circuit.
	dev := arch.Linear(6)
	c := circuit.New(6)
	c.CX(0, 3)
	c.CX(0, 4)
	c.CX(0, 5)
	with := mustRemap(t, c, dev, nil, Options{})
	without := mustRemap(t, c, dev, nil, Options{ExtendedSize: 1, ExtendedWeight: 1e-9})
	if with.SwapCount > without.SwapCount {
		t.Errorf("extended set hurt: %d vs %d swaps", with.SwapCount, without.SwapCount)
	}
}

func TestWeightedDepthComputable(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := randCircuit(3, 10, 80)
	res := mustRemap(t, c, dev, nil, Options{})
	wd := schedule.WeightedDepth(res.Circuit, dev.Durations)
	if wd <= 0 {
		t.Errorf("weighted depth = %d", wd)
	}
	// Weighted depth under superconducting durations is at least twice the
	// two-qubit gate count on the critical path; weak lower bound: depth.
	if wd < res.Circuit.Depth() {
		t.Errorf("weighted depth %d < depth %d", wd, res.Circuit.Depth())
	}
}

// qftLike builds the all-to-all controlled-phase pattern of a QFT, lowered.
func qftLike(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CP(0.5, i, j)
		}
	}
	return circuit.Decompose(c)
}

// randCircuit builds a deterministic pseudo-random lowered circuit.
func randCircuit(seed int64, qubits, gates int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < gates; i++ {
		switch next(5) {
		case 0, 1:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CX(a, b)
		case 2:
			c.H(next(qubits))
		case 3:
			c.T(next(qubits))
		default:
			c.RZ(float64(next(9))*0.125, next(qubits))
		}
	}
	return c
}

func TestOptionDefaultsResolution(t *testing.T) {
	var o Options
	if o.extendedSize() != DefaultExtendedSize {
		t.Errorf("extendedSize() = %d", o.extendedSize())
	}
	if o.extendedWeight() != DefaultExtendedWeight {
		t.Errorf("extendedWeight() = %g", o.extendedWeight())
	}
	if o.decayDelta() != DefaultDecayDelta {
		t.Errorf("decayDelta() = %g", o.decayDelta())
	}
	if o.decayReset() != DefaultDecayReset {
		t.Errorf("decayReset() = %d", o.decayReset())
	}
	o = Options{ExtendedSize: 3, ExtendedWeight: 0.25, DecayDelta: 0.01, DecayReset: 2}
	if o.extendedSize() != 3 || o.extendedWeight() != 0.25 || o.decayDelta() != 0.01 || o.decayReset() != 2 {
		t.Error("explicit options ignored")
	}
}

func TestOptionVariantsStayCorrect(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := randCircuit(21, 10, 120)
	for i, opts := range []Options{
		{},
		{ExtendedSize: 1},
		{ExtendedSize: 50, ExtendedWeight: 0.9},
		{DecayDelta: 0.1, DecayReset: 1},
	} {
		res, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		nonSwap := 0
		for _, g := range res.Circuit.Gates {
			if g.Op.TwoQubit() && !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
				t.Fatalf("variant %d: non-compliant %v", i, g)
			}
			if g.Op != circuit.OpSwap {
				nonSwap++
			}
		}
		if nonSwap != c.Len() {
			t.Fatalf("variant %d: %d gates out, want %d", i, nonSwap, c.Len())
		}
	}
}

// sabreEquivalent compares every observable of two SABRE results.
func sabreEquivalent(a, b *Result) bool {
	return a.SwapCount == b.SwapCount &&
		a.Circuit.Equal(b.Circuit) &&
		a.InitialLayout.Equal(b.InitialLayout) &&
		a.FinalLayout.Equal(b.FinalLayout)
}

// TestRemapIdenticalToNaiveScore is the delta-scoring equivalence
// property: the incidence-indexed base+delta evaluation (integer sums, so
// base + delta is exact, and the float operation order replicates the
// reference) must produce identical output circuits, swap counts and
// layouts to the from-scratch score on randomized circuits, devices and
// option variants.
func TestRemapIdenticalToNaiveScore(t *testing.T) {
	devices := []*arch.Device{
		arch.Linear(6), arch.Ring(7), arch.Grid("g33", 3, 3),
		arch.IBMQ16Melbourne(), arch.IBMQ20Tokyo(), arch.SycamoreQ54(),
	}
	variants := []Options{
		{},
		{ExtendedSize: 1},
		{ExtendedSize: 50, ExtendedWeight: 0.9},
		{DecayDelta: 0.1, DecayReset: 1},
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		opts := variants[int(uint64(seed>>8)%uint64(len(variants)))]
		qubits := dev.NumQubits
		if qubits > 8 {
			qubits = 8
		}
		c := randCircuit(seed, qubits, 70)
		delta, err := Remap(c, dev, nil, opts)
		if err != nil {
			t.Logf("delta: %v", err)
			return false
		}
		naive := opts
		naive.naiveScore = true
		ref, err := Remap(c, dev, nil, naive)
		if err != nil {
			t.Logf("naive: %v", err)
			return false
		}
		if !sabreEquivalent(delta, ref) {
			t.Logf("opts %+v on %s: outputs differ (swaps %d vs %d)",
				opts, dev.Name, delta.SwapCount, ref.SwapCount)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestInitialLayoutIdenticalToNaiveScore extends the equivalence through
// the reverse-traversal pass (two full Remaps per call), the path the
// Fig 8 sweep spends most of its SABRE time in.
func TestInitialLayoutIdenticalToNaiveScore(t *testing.T) {
	for _, dev := range []*arch.Device{arch.IBMQ20Tokyo(), arch.SycamoreQ54()} {
		for seed := int64(0); seed < 4; seed++ {
			c := randCircuit(seed*97+5, 8, 120)
			delta, err := InitialLayout(c, dev, seed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := InitialLayout(c, dev, seed, Options{naiveScore: true})
			if err != nil {
				t.Fatal(err)
			}
			if !delta.Equal(ref) {
				t.Fatalf("%s seed %d: initial layouts differ", dev.Name, seed)
			}
		}
	}
}

// TestRemapIdenticalToNaiveScoreQFT pins the equivalence on the deep
// commuting-chain shape where extended sets stay saturated.
func TestRemapIdenticalToNaiveScoreQFT(t *testing.T) {
	c := qftLike(10)
	for _, dev := range []*arch.Device{arch.IBMQ20Tokyo(), arch.Linear(10)} {
		delta := mustRemap(t, c, dev, nil, Options{})
		ref := mustRemap(t, c, dev, nil, Options{naiveScore: true})
		if !sabreEquivalent(delta, ref) {
			t.Fatalf("%s: outputs differ (swaps %d vs %d)", dev.Name, delta.SwapCount, ref.SwapCount)
		}
	}
}

// BenchmarkDeltaScoreQFT16Tokyo / BenchmarkNaiveScoreQFT16Tokyo expose the
// swap-search scoring cost before/after in one binary.
func BenchmarkDeltaScoreQFT16Tokyo(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := qftLike(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveScoreQFT16Tokyo(b *testing.B) {
	dev := arch.IBMQ20Tokyo()
	c := qftLike(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Remap(c, dev, nil, Options{naiveScore: true}); err != nil {
			b.Fatal(err)
		}
	}
}
