// Package pool is the bounded worker pool shared by the experiment driver
// (experiments.RunBatch), and the portfolio search (portfolio.Run). It is a
// dependency-free leaf so every fan-out in the tree uses one
// implementation of the clamp and the serial degeneration.
package pool

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values <= 0 select GOMAXPROCS, and
// the result is clamped to n so tiny batches do not spawn idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes jobs 0..n-1 across a bounded pool. workers <= 0 selects
// GOMAXPROCS; workers == 1 degenerates to a plain serial loop with no
// goroutine or channel traffic, making serial-vs-parallel comparisons
// honest. Error handling and panic recovery are the caller's concern: jobs
// record their outcomes into pre-indexed slots, which is also what keeps
// every caller's results deterministic under concurrency.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
