// Package pool is the bounded worker pool shared by the experiment driver
// (experiments.RunBatch), the portfolio search (portfolio.Run) and the
// service batch path. It is a near-dependency-free leaf so every fan-out in
// the tree uses one implementation of the clamp, the serial degeneration
// and the context-aware dispatch stop.
package pool

import (
	"context"
	"runtime"
	"sync"

	"codar/internal/interrupt"
)

// Workers resolves a worker-count knob: values <= 0 select GOMAXPROCS, and
// the result is clamped to n so tiny batches do not spawn idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes jobs 0..n-1 across a bounded pool. workers <= 0 selects
// GOMAXPROCS; workers == 1 degenerates to a plain serial loop with no
// goroutine or channel traffic, making serial-vs-parallel comparisons
// honest. Error handling and panic recovery are the caller's concern: jobs
// record their outcomes into pre-indexed slots, which is also what keeps
// every caller's results deterministic under concurrency.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RunCtx is Run with a context-aware dispatcher: once ctx fires, no further
// job is started — in-flight jobs run to completion (jobs that want to stop
// early must watch ctx themselves), the workers drain, and RunCtx returns
// the classified context error (interrupt.ErrCanceled / ErrDeadline). Jobs
// never started are simply skipped; the caller decides how to report them.
// A nil ctx is exactly Run. RunCtx never leaks goroutines: every worker has
// exited by the time it returns.
func RunCtx(ctx context.Context, n, workers int, job func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		Run(n, workers, job)
		return nil
	}
	if n <= 0 {
		return interrupt.Classify(ctx)
	}
	done := ctx.Done()
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return interrupt.Classify(ctx)
			default:
			}
			job(i)
		}
		return interrupt.Classify(ctx)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return interrupt.Classify(ctx)
}
