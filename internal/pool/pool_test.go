package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamps(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", got)
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 50
		var counts [n]int32
		Run(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
	Run(0, 4, func(int) { t.Fatal("job ran for n=0") })
}
