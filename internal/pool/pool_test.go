package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamps(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", got)
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 50
		var counts [n]int32
		Run(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
	Run(0, 4, func(int) { t.Fatal("job ran for n=0") })
}

// TestRunSerialIsOrdered pins the workers == 1 degeneration: a plain loop,
// so jobs observe strict index order with no goroutine hand-off.
func TestRunSerialIsOrdered(t *testing.T) {
	var order []int
	Run(25, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial run out of order at %d: %v", i, order)
		}
	}
	if len(order) != 25 {
		t.Fatalf("serial run executed %d of 25 jobs", len(order))
	}
}

// TestRunNegativeAndZero: non-positive batch sizes are no-ops, not panics.
func TestRunNegativeAndZero(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		Run(n, 4, func(int) { t.Fatalf("job ran for n=%d", n) })
	}
}

// TestRunMoreWorkersThanJobs: the clamp keeps a 2-job batch from spawning
// idle goroutines, and every job still runs exactly once.
func TestRunMoreWorkersThanJobs(t *testing.T) {
	var counts [2]int32
	Run(2, 64, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestRunParallelismIsBounded checks the pool never runs more jobs
// concurrently than the worker budget.
func TestRunParallelismIsBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	Run(40, workers, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs with a %d-worker budget", peak, workers)
	}
}

// TestWorkersGOMAXPROCSClampedToBatch: the <=0 default resolves to
// GOMAXPROCS but still clamps to the batch size.
func TestWorkersGOMAXPROCSClampedToBatch(t *testing.T) {
	if got := Workers(0, 1); got != 1 {
		t.Errorf("Workers(0, 1) = %d, want 1", got)
	}
	if got := Workers(-5, 2); got != 2 && got != 1 {
		// GOMAXPROCS may be 1 on a constrained runner; either clamp is fine.
		t.Errorf("Workers(-5, 2) = %d, want <= 2", got)
	}
}
