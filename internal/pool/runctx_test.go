package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"codar/internal/interrupt"
	"codar/internal/testutil"
)

// TestRunCtxNilIsRun: nil and never-done contexts take the plain Run path
// and report no error.
func TestRunCtxNilIsRun(t *testing.T) {
	for name, ctx := range map[string]context.Context{"nil": nil, "background": context.Background()} {
		const n = 30
		var counts [n]int32
		if err := RunCtx(ctx, n, 4, func(i int) { atomic.AddInt32(&counts[i], 1) }); err != nil {
			t.Fatalf("%s: err = %v, want nil", name, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%s: job %d ran %d times", name, i, c)
			}
		}
	}
}

// TestRunCtxCompletesWhenUnfired: a live cancelable context that never
// fires runs every job exactly once and returns nil.
func TestRunCtxCompletesWhenUnfired(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, workers := range []int{1, 4} {
		const n = 40
		var counts [n]int32
		if err := RunCtx(ctx, n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) }); err != nil {
			t.Fatalf("workers=%d: err = %v, want nil", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunCtxPreCanceledRunsNothing: a dead context dispatches no jobs at
// all, serial and parallel alike, and classifies the error.
func TestRunCtxPreCanceledRunsNothing(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int32
		err := RunCtx(ctx, 20, workers, func(int) { atomic.AddInt32(&ran, 1) })
		if !errors.Is(err, interrupt.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if n := atomic.LoadInt32(&ran); n != 0 {
			t.Fatalf("workers=%d: %d jobs ran under a dead ctx", workers, n)
		}
	}
}

// TestRunCtxStopsDispatchingOnCancel: jobs already started finish, but no
// new job starts once the context fires, and every worker exits (the leak
// check is the real assertion).
func TestRunCtxStopsDispatchingOnCancel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var started int32
		const n = 1000
		err := RunCtx(ctx, n, workers, func(i int) {
			if atomic.AddInt32(&started, 1) == 2 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, interrupt.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		// After the cancel lands, at most the in-flight jobs (bounded by the
		// worker count) plus a race-window hand-off can still start; the
		// dispatcher itself must stop far short of the full batch.
		if s := atomic.LoadInt32(&started); int(s) >= n {
			t.Fatalf("workers=%d: all %d jobs ran despite cancel", workers, s)
		}
	}
}

// TestRunCtxDeadlineClassified: a deadline-killed run reports ErrDeadline,
// not ErrCanceled.
func TestRunCtxDeadlineClassified(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err := RunCtx(ctx, 10, 2, func(int) {})
	if !errors.Is(err, interrupt.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestRunCtxZeroJobs: n <= 0 still classifies the context instead of
// silently succeeding under a dead one.
func TestRunCtxZeroJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunCtx(ctx, 0, 4, func(int) { t.Fatal("job ran for n=0") }); !errors.Is(err, interrupt.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if err := RunCtx(context.Background(), 0, 4, func(int) { t.Fatal("job ran for n=0") }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}
