// Package placement generates initial logical→physical layouts. The paper
// notes that "initial mapping has been proved to be significant for the
// qubit mapping problem" (§V-A) and adopts SABRE's reverse-traversal
// method for its evaluation; this package provides that plus the standard
// alternatives (trivial, seeded random, interaction-aware greedy), so the
// sensitivity can be measured (see the initial-mapping study in
// internal/experiments).
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/sabre"
)

// Trivial maps logical qubit i to physical qubit i.
func Trivial(c *circuit.Circuit, dev *arch.Device) (*arch.Layout, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("placement: circuit needs %d qubits, device %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	return arch.NewTrivialLayout(c.NumQubits, dev.NumQubits), nil
}

// Random assigns logical qubits to a seeded random subset of physical
// qubits.
func Random(c *circuit.Circuit, dev *arch.Device, seed int64) (*arch.Layout, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("placement: circuit needs %d qubits, device %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(dev.NumQubits)[:c.NumQubits]
	return arch.NewLayout(perm, dev.NumQubits)
}

// SabreReverse is the paper's evaluation choice: SABRE's bidirectional
// reverse-traversal initial mapping.
func SabreReverse(c *circuit.Circuit, dev *arch.Device, seed int64) (*arch.Layout, error) {
	return sabre.InitialLayout(c, dev, seed, sabre.Options{})
}

// SabreReverseCost is SabreReverse under a calibration-weighted metric, so
// placement also parks busy qubits away from unreliable couplers (the
// placement-heavy win recorded in DESIGN.md §8). nil cost is exactly
// SabreReverse.
func SabreReverseCost(c *circuit.Circuit, dev *arch.Device, seed int64, cost *arch.CostModel) (*arch.Layout, error) {
	return sabre.InitialLayout(c, dev, seed, sabre.Options{Cost: cost})
}

// Dense greedily places heavily interacting logical qubits on
// well-connected physical regions (the DenseLayout idea): logical qubits
// are placed in descending interaction weight, each at the free physical
// qubit minimising the weighted distance to its already-placed partners.
func Dense(c *circuit.Circuit, dev *arch.Device) (*arch.Layout, error) {
	n := c.NumQubits
	if n > dev.NumQubits {
		return nil, fmt.Errorf("placement: circuit needs %d qubits, device %s has %d", n, dev.Name, dev.NumQubits)
	}
	// Logical interaction weights.
	weight := make([][]int, n)
	for i := range weight {
		weight[i] = make([]int, n)
	}
	total := make([]int, n)
	for _, g := range c.Gates {
		if !g.Op.TwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		weight[a][b]++
		weight[b][a]++
		total[a]++
		total[b]++
	}

	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = -1
	}
	usedPhys := make([]bool, dev.NumQubits)

	// Seed: the busiest logical qubit on the highest-degree physical qubit.
	first := 0
	for q := 1; q < n; q++ {
		if total[q] > total[first] {
			first = q
		}
	}
	bestPhys := 0
	for p := 1; p < dev.NumQubits; p++ {
		if dev.Degree(p) > dev.Degree(bestPhys) {
			bestPhys = p
		}
	}
	assignment[first] = bestPhys
	usedPhys[bestPhys] = true

	// Remaining logical qubits in descending attachment to the placed set.
	for placed := 1; placed < n; placed++ {
		next, nextScore := -1, -1
		for q := 0; q < n; q++ {
			if assignment[q] >= 0 {
				continue
			}
			score := 0
			for r := 0; r < n; r++ {
				if assignment[r] >= 0 {
					score += weight[q][r]
				}
			}
			//

			if score > nextScore || (score == nextScore && (next < 0 || total[q] > total[next])) {
				next, nextScore = q, score
			}
		}
		// Best free physical location: minimise weighted distance to the
		// placed partners (falling back to closeness to the seed for
		// isolated qubits).
		bestP, bestCost := -1, 0
		for p := 0; p < dev.NumQubits; p++ {
			if usedPhys[p] {
				continue
			}
			cost := 0
			attached := false
			for r := 0; r < n; r++ {
				if assignment[r] >= 0 && weight[next][r] > 0 {
					cost += weight[next][r] * dev.Distance(p, assignment[r])
					attached = true
				}
			}
			if !attached {
				cost = dev.Distance(p, bestPhys)
			}
			if bestP < 0 || cost < bestCost {
				bestP, bestCost = p, cost
			}
		}
		assignment[next] = bestP
		usedPhys[bestP] = true
	}
	return arch.NewLayout(assignment, dev.NumQubits)
}

// Method names a placement strategy for reports.
type Method string

// The available strategies.
const (
	MethodTrivial      Method = "trivial"
	MethodRandom       Method = "random"
	MethodDense        Method = "dense"
	MethodSabreReverse Method = "sabre-reverse"
)

// Methods lists all strategies in report order.
func Methods() []Method {
	return []Method{MethodTrivial, MethodRandom, MethodDense, MethodSabreReverse}
}

// Seeded reports whether the strategy consumes the seed. Seed-insensitive
// strategies (trivial, dense) produce identical layouts for every seed,
// which the portfolio exploits to skip duplicate grid points.
func (m Method) Seeded() bool {
	return m == MethodRandom || m == MethodSabreReverse
}

// Generate dispatches by method name.
func Generate(m Method, c *circuit.Circuit, dev *arch.Device, seed int64) (*arch.Layout, error) {
	return GenerateCost(m, c, dev, seed, nil)
}

// GenerateCost is Generate with an optional calibration-weighted metric:
// the sabre-reverse strategy places under it (matching the calibrated
// single-shot pipeline), the structural strategies ignore it. nil cost is
// exactly Generate.
func GenerateCost(m Method, c *circuit.Circuit, dev *arch.Device, seed int64, cost *arch.CostModel) (*arch.Layout, error) {
	return generateOpts(m, c, nil, dev, seed, sabre.Options{Cost: cost})
}

// GenerateCostAssembled is GenerateCost over a pre-built assembly: the
// sabre-reverse strategy (two full SABRE passes) reuses the assembly's
// DAG, SoA layout and cached reversed circuit; the structural strategies
// just read the raw circuit. The portfolio calls this once per distinct
// (placement, seed) pair and shares the result across algorithms.
func GenerateCostAssembled(m Method, a *circuit.Assembly, dev *arch.Device, seed int64, cost *arch.CostModel) (*arch.Layout, error) {
	return generateOpts(m, a.Circ, a, dev, seed, sabre.Options{Cost: cost})
}

// GenerateOptsAssembled is GenerateCostAssembled with full SABRE options —
// most usefully Options.Ctx, so canceling a portfolio request also aborts
// its in-flight placement passes (a sabre-reverse placement is two full
// SABRE runs, the grid's dominant cost). Only the sabre-reverse strategy
// consumes the options; the structural strategies are cheap enough that
// they always run to completion.
func GenerateOptsAssembled(m Method, a *circuit.Assembly, dev *arch.Device, seed int64, opts sabre.Options) (*arch.Layout, error) {
	return generateOpts(m, a.Circ, a, dev, seed, opts)
}

func generateOpts(m Method, c *circuit.Circuit, a *circuit.Assembly, dev *arch.Device, seed int64, opts sabre.Options) (*arch.Layout, error) {
	switch m {
	case MethodTrivial:
		return Trivial(c, dev)
	case MethodRandom:
		return Random(c, dev, seed)
	case MethodDense:
		return Dense(c, dev)
	case MethodSabreReverse:
		if a != nil {
			return sabre.InitialLayoutAssembled(a, dev, seed, opts)
		}
		return sabre.InitialLayout(c, dev, seed, opts)
	default:
		names := make([]string, 0, len(Methods()))
		for _, k := range Methods() {
			names = append(names, string(k))
		}
		sort.Strings(names)
		return nil, fmt.Errorf("placement: unknown method %q (known: %v)", m, names)
	}
}
