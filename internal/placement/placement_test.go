package placement

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/schedule"
	"codar/internal/workloads"
)

func ghzChain(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	return c
}

func TestAllMethodsProduceValidLayouts(t *testing.T) {
	dev := arch.IBMQ20Tokyo()
	c := ghzChain(8)
	for _, m := range Methods() {
		l, err := Generate(m, c, dev, 3)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
		if l.NumLogical() != 8 || l.NumPhysical() != 20 {
			t.Errorf("%s: shape %d/%d", m, l.NumLogical(), l.NumPhysical())
		}
	}
	if _, err := Generate(Method("bogus"), c, dev, 0); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestOversizedCircuitRejected(t *testing.T) {
	dev := arch.Linear(3)
	c := circuit.New(5)
	for _, m := range Methods() {
		if _, err := Generate(m, c, dev, 0); err == nil {
			t.Errorf("%s accepted an oversized circuit", m)
		}
	}
}

func TestTrivialIsIdentity(t *testing.T) {
	dev := arch.Linear(5)
	l, err := Trivial(circuit.New(3), dev)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		if l.Phys(q) != q {
			t.Errorf("Phys(%d) = %d", q, l.Phys(q))
		}
	}
}

func TestRandomSeedBehaviour(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	c := circuit.New(8)
	a, _ := Random(c, dev, 1)
	b, _ := Random(c, dev, 1)
	if !a.Equal(b) {
		t.Error("same seed, different layouts")
	}
	d, _ := Random(c, dev, 2)
	if a.Equal(d) {
		t.Error("different seeds should give different layouts (overwhelmingly)")
	}
}

// TestDensePlacesChainContiguously: on a line device, a GHZ chain should
// be placed so that the total weighted distance of its interactions is
// near-minimal (every CX pair within distance ~2).
func TestDensePlacesChainContiguously(t *testing.T) {
	dev := arch.Linear(10)
	c := ghzChain(6)
	l, err := Dense(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < 6; i++ {
		d := dev.Distance(l.Phys(i), l.Phys(i+1))
		if d > 3 {
			t.Errorf("chain pair (%d,%d) placed at distance %d", i, i+1, d)
		}
	}
}

// TestDenseBeatsRandomOnStructuredCircuits: the greedy placement should
// give CODAR no worse a starting point than a random one on structured
// workloads (measured by mapped weighted depth).
func TestDenseBeatsRandomOnStructuredCircuits(t *testing.T) {
	dev := arch.IBMQ16Melbourne()
	b, err := workloads.ByName("qft_8")
	if err != nil {
		t.Fatal(err)
	}
	c := b.Circuit()
	wd := func(l *arch.Layout) int {
		res, err := core.Remap(c, dev, l, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return schedule.WeightedDepth(res.Circuit, dev.Durations)
	}
	dense, err := Dense(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Average a few random seeds to avoid a fluke comparison.
	randomTotal := 0
	const tries = 3
	for seed := int64(0); seed < tries; seed++ {
		r, err := Random(c, dev, seed)
		if err != nil {
			t.Fatal(err)
		}
		randomTotal += wd(r)
	}
	denseWD := wd(dense)
	avgRandom := randomTotal / tries
	if denseWD > avgRandom*5/4 {
		t.Errorf("dense placement much worse than random: %d vs avg %d", denseWD, avgRandom)
	}
}

// Property: Dense always yields a valid injective layout, for random
// circuits across devices.
func TestDenseProperties(t *testing.T) {
	devices := []*arch.Device{arch.Linear(8), arch.Grid("g", 3, 3), arch.IBMQ20Tokyo()}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		s := uint64(seed)*0x9E3779B97F4A7C15 + 3
		next := func(mod int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return int(s % uint64(mod))
		}
		n := 2 + next(6)
		c := circuit.New(n)
		for i := 0; i < 15; i++ {
			a := next(n)
			b := (a + 1 + next(n-1)) % n
			c.CX(a, b)
		}
		l, err := Dense(c, dev)
		if err != nil {
			return false
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDenseHandlesIdleQubits: logical qubits with no 2q interactions
// still get placed.
func TestDenseHandlesIdleQubits(t *testing.T) {
	dev := arch.Grid("g", 3, 3)
	c := circuit.New(5)
	c.CX(0, 1) // qubits 2..4 never interact
	l, err := Dense(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}
