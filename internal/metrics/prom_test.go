package metrics

import (
	"strings"
	"testing"
)

func TestPromWriterRendersFamilies(t *testing.T) {
	p := NewPromWriter()
	p.Counter("codard_requests_total", "Completed map requests.", 42)
	p.Gauge("codard_in_flight", "Jobs holding a worker slot.", 3)
	p.Declare("codard_cache_hits_total", "counter", "Cache hits per shard.")
	p.Labeled("codard_cache_hits_total", map[string]string{"shard": "0"}, 10)
	p.Labeled("codard_cache_hits_total", map[string]string{"shard": "1"}, 7)

	var b strings.Builder
	if _, err := p.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP codard_requests_total Completed map requests.\n",
		"# TYPE codard_requests_total counter\n",
		"codard_requests_total 42\n",
		"# TYPE codard_in_flight gauge\n",
		"codard_in_flight 3\n",
		`codard_cache_hits_total{shard="0"} 10` + "\n",
		`codard_cache_hits_total{shard="1"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in declaration order.
	if strings.Index(out, "codard_requests_total") > strings.Index(out, "codard_in_flight") {
		t.Error("families out of declaration order")
	}
}

func TestPromWriterEscapesLabels(t *testing.T) {
	p := NewPromWriter()
	p.Declare("m", "gauge", "")
	p.Labeled("m", map[string]string{"k": "a\"b\\c\nd"}, 1)
	var b strings.Builder
	p.WriteTo(&b)
	want := `m{k="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("got %q, want substring %q", b.String(), want)
	}
}

func TestPromWriterValueFormatting(t *testing.T) {
	p := NewPromWriter()
	p.Gauge("int_like", "", 12345)
	p.Gauge("fractional", "", 2.5)
	var b strings.Builder
	p.WriteTo(&b)
	if !strings.Contains(b.String(), "int_like 12345\n") {
		t.Errorf("integer value rendered with noise: %q", b.String())
	}
	if !strings.Contains(b.String(), "fractional 2.5\n") {
		t.Errorf("fractional value mangled: %q", b.String())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 5},
		{0.90, 9},
		{0.99, 10},
		{0.01, 1},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%.2f) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
}
