package metrics

import "sync/atomic"

// Counter is a monotonically increasing operational counter (requests
// canceled, panics recovered, ...). The zero value is ready to use; all
// methods are safe for concurrent use. It complements the statistical
// helpers in this package: those summarise experiment outputs, Counter and
// Gauge observe a running process.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight jobs): it moves
// both ways. The zero value is ready to use; all methods are safe for
// concurrent use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }
