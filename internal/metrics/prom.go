package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) rendering for the /metrics
// endpoint. Hand-rolled on purpose: the format is four line shapes (HELP,
// TYPE, sample, sample-with-labels) and pulling in a client library for
// that would violate the repo's stdlib-only rule.

// PromWriter accumulates metric families and renders them in the
// Prometheus text format. Families render in the order first declared;
// samples within a family render in insertion order. Not safe for
// concurrent use — build one per scrape.
type PromWriter struct {
	order    []string
	families map[string]*promFamily
}

type promFamily struct {
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// NewPromWriter creates an empty scrape.
func NewPromWriter() *PromWriter {
	return &PromWriter{families: make(map[string]*promFamily)}
}

// Declare registers a metric family's HELP and TYPE ("counter" or
// "gauge"). Declaring twice keeps the first help/type.
func (p *PromWriter) Declare(name, typ, help string) {
	if _, ok := p.families[name]; ok {
		return
	}
	p.families[name] = &promFamily{help: help, typ: typ}
	p.order = append(p.order, name)
}

// Counter declares (if needed) and appends an unlabelled counter sample.
func (p *PromWriter) Counter(name, help string, value uint64) {
	p.Declare(name, "counter", help)
	p.sample(name, nil, float64(value))
}

// Gauge declares (if needed) and appends an unlabelled gauge sample.
func (p *PromWriter) Gauge(name, help string, value float64) {
	p.Declare(name, "gauge", help)
	p.sample(name, nil, value)
}

// Labeled appends a sample with labels to an already-declared family.
// Labels render sorted by key so scrapes are byte-stable.
func (p *PromWriter) Labeled(name string, labels map[string]string, value float64) {
	p.sample(name, labels, value)
}

func (p *PromWriter) sample(name string, labels map[string]string, value float64) {
	fam, ok := p.families[name]
	if !ok {
		p.Declare(name, "gauge", "")
		fam = p.families[name]
	}
	fam.samples = append(fam.samples, promSample{labels: renderLabels(labels), value: value})
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the text-format label escapes: backslash, quote,
// newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteTo renders the scrape.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, name := range p.order {
		fam := p.families[name]
		if fam.help != "" {
			c, err := fmt.Fprintf(w, "# HELP %s %s\n", name, fam.help)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
		c, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ)
		n += int64(c)
		if err != nil {
			return n, err
		}
		for _, s := range fam.samples {
			c, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.value))
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// formatValue renders integers without an exponent or trailing zeros so
// counters read naturally, and everything else in shortest-float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Percentile reads the nearest-rank percentile from an ascending-sorted
// slice. Shared by the service's /v1/stats summary and codarload's
// client-side report so both quote the same rank convention.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
