package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 2, 3}, 2},
		{[]float64{0.5, 1.5}, 1},
	}
	for _, tc := range cases {
		if got := Mean(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Mean(%v) = %g, want %g", tc.xs, got, tc.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %g", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
	if got := GeoMean([]float64{1, -1}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %g, want NaN", got)
	}
	// GeoMean <= Mean (AM-GM).
	xs := []float64{0.7, 1.3, 2.9, 0.4}
	if GeoMean(xs) > Mean(xs) {
		t.Error("AM-GM violated")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %g, want 3", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Errorf("even Median = %g, want 2.5", Median([]float64{1, 2, 3, 4}))
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	// Median must not mutate its input.
	orig := []float64{9, 1, 5}
	Median(orig)
	if orig[0] != 9 {
		t.Error("Median mutated input")
	}
}

func TestCountAtLeast(t *testing.T) {
	xs := []float64{0.9, 1.0, 1.1, 2.0}
	if got := CountAtLeast(xs, 1.0); got != 3 {
		t.Errorf("CountAtLeast = %d, want 3", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", 1.23456)
	tab.AddRow("beta", 42)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"name", "value", "alpha", "1.235", "beta", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}
