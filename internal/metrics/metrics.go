// Package metrics provides the statistical helpers and table rendering
// used by the experiment harnesses (Fig 8 speedup sweep, Fig 9 fidelity
// comparison).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must be positive
// (0 for an empty slice).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CountAtLeast returns how many values are >= threshold.
func CountAtLeast(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return n
}

// Table renders aligned text tables for harness output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table through a tabwriter.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
