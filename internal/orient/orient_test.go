package orient

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/sim"
)

// directedPair builds a 2-qubit device where only CX 0→1 is native.
func directedPair(t *testing.T) *arch.Device {
	t.Helper()
	d, err := arch.NewDevice("pair", 2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetDirections([][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSetDirectionsValidation(t *testing.T) {
	d, _ := arch.NewDevice("tri", 3, [][2]int{{0, 1}, {1, 2}})
	if err := d.SetDirections([][2]int{{0, 2}}); err == nil {
		t.Error("non-coupler direction accepted")
	}
	if err := d.SetDirections([][2]int{{0, 1}}); err == nil {
		t.Error("uncovered coupler accepted")
	}
	if err := d.SetDirections([][2]int{{0, 1}, {2, 1}}); err != nil {
		t.Errorf("valid directions rejected: %v", err)
	}
	if !d.Directed() || !d.CXAllowed(0, 1) || d.CXAllowed(1, 0) {
		t.Error("direction semantics broken")
	}
	if err := d.SetDirections(nil); err != nil || d.Directed() {
		t.Error("reset to undirected failed")
	}
	if !d.CXAllowed(1, 0) {
		t.Error("undirected device should allow both orientations")
	}
}

func TestPassKeepsNativeDirection(t *testing.T) {
	dev := directedPair(t)
	c := circuit.New(2).CX(0, 1)
	out, res, err := Pass(c, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reversed != 0 || out.Len() != 1 {
		t.Errorf("native CX rewritten: %s", out)
	}
}

func TestPassReversesCX(t *testing.T) {
	dev := directedPair(t)
	c := circuit.New(2).CX(1, 0) // illegal orientation
	out, res, err := Pass(c, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reversed != 1 {
		t.Errorf("Reversed = %d", res.Reversed)
	}
	if out.Len() != 5 { // h,h,cx,h,h
		t.Fatalf("rewrite length %d", out.Len())
	}
	// Every CX in the output respects the direction.
	for _, g := range out.Gates {
		if g.Op == circuit.OpCX && !dev.CXAllowed(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("illegal orientation survived: %v", g)
		}
	}
	// Semantics preserved.
	a, _ := sim.Run(c)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("H-conjugated reversal changed semantics")
	}
}

func TestPassLowersSwaps(t *testing.T) {
	dev := directedPair(t)
	c := circuit.New(2).Swap(0, 1)
	out, res, err := Pass(c, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoweredSwaps != 1 || res.Reversed != 1 {
		t.Errorf("res = %+v", res)
	}
	// 3 CX, the middle reversed: 2 + 5 gates.
	if out.Len() != 7 {
		t.Errorf("lowered swap length %d", out.Len())
	}
	a, _ := sim.Run(c)
	b, _ := sim.Run(out)
	if !a.EqualUpToPhase(b, 1e-9) {
		t.Error("swap lowering changed semantics")
	}
}

func TestPassLowerSwapsOnUndirected(t *testing.T) {
	dev, _ := arch.NewDevice("pair", 2, [][2]int{{0, 1}})
	c := circuit.New(2).Swap(0, 1)
	out, res, err := Pass(c, dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoweredSwaps != 1 || out.Len() != 3 {
		t.Errorf("res=%+v len=%d", res, out.Len())
	}
	// Without the flag the swap passes through.
	out2, _, err := Pass(c, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 1 || out2.Gates[0].Op != circuit.OpSwap {
		t.Error("swap should pass through undirected devices")
	}
}

func TestPassRejectsNonCouplers(t *testing.T) {
	dev, _ := arch.NewDevice("line", 3, [][2]int{{0, 1}, {1, 2}})
	c := circuit.New(3).CX(0, 2)
	if _, _, err := Pass(c, dev, false); err == nil {
		t.Error("non-coupler CX accepted")
	}
	c2 := circuit.New(3).CZ(0, 2)
	if _, _, err := Pass(c2, dev, false); err == nil {
		t.Error("non-coupler CZ accepted")
	}
	c3 := circuit.New(3).Swap(0, 2)
	if _, _, err := Pass(c3, dev, true); err == nil {
		t.Error("non-coupler swap accepted")
	}
}

func TestIBMQX4Directions(t *testing.T) {
	d := arch.IBMQX4()
	if !d.Directed() {
		t.Fatal("QX4 should be directed")
	}
	for _, p := range [][2]int{{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {2, 4}} {
		if !d.CXAllowed(p[0], p[1]) {
			t.Errorf("QX4 should allow cx %v", p)
		}
		if d.CXAllowed(p[1], p[0]) {
			t.Errorf("QX4 should forbid cx %d,%d", p[1], p[0])
		}
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

// TestFullPipelineOnQX4: map with CODAR (undirected routing), orient, and
// check the final circuit is executable gate-for-gate on the directed
// device and still equivalent to the input.
func TestFullPipelineOnQX4(t *testing.T) {
	dev := arch.IBMQX4()
	f := func(seed int64) bool {
		c := randCircuit(seed, 5, 25)
		res, err := core.Remap(c, dev, nil, core.Options{})
		if err != nil {
			t.Logf("remap: %v", err)
			return false
		}
		out, _, err := Pass(res.Circuit, dev, true)
		if err != nil {
			t.Logf("orient: %v", err)
			return false
		}
		for _, g := range out.Gates {
			if g.Op == circuit.OpSwap {
				t.Logf("swap survived lowering")
				return false
			}
			if g.Op == circuit.OpCX && !dev.CXAllowed(g.Qubits[0], g.Qubits[1]) {
				t.Logf("illegal orientation: %v", g)
				return false
			}
		}
		// The oriented circuit still implements the original (statevector
		// equality through the final layout).
		before, err := sim.Run(res.Circuit)
		if err != nil {
			return false
		}
		after, err := sim.Run(out)
		if err != nil {
			return false
		}
		return before.EqualUpToPhase(after, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randCircuit(seed int64, qubits, gates int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 99
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < gates; i++ {
		switch next(4) {
		case 0, 1:
			a := next(qubits)
			b := (a + 1 + next(qubits-1)) % qubits
			c.CX(a, b)
		case 2:
			c.H(next(qubits))
		default:
			c.T(next(qubits))
		}
	}
	return c
}
