// Package orient adapts mapped circuits to devices with *directed*
// coupling (the early 5-qubit IBM QX chips the paper surveys in §II-A,
// where a CX is natively implementable in only one direction per coupler).
// The maQAM treats couplers as undirected during routing — reversing a CX
// costs four H gates, far cheaper than a SWAP — so orientation is a cheap
// post-pass after mapping:
//
//	cx a,b  (only b→a native)  →  h a; h b; cx b,a; h b; h a
//
// SWAPs are first lowered to three CXs (the middle one reversed), then
// oriented the same way. CZ is symmetric and passes through.
package orient

import (
	"fmt"

	"codar/internal/arch"
	"codar/internal/circuit"
)

// Result summarises an orientation pass.
type Result struct {
	// Reversed is the number of CXs that needed H-conjugation.
	Reversed int
	// LoweredSwaps is the number of SWAPs expanded into CX triples.
	LoweredSwaps int
}

// Pass rewrites a hardware-compliant physical circuit so that every CX
// respects the device's native orientation. On undirected devices the
// circuit is returned unchanged (modulo SWAP lowering when lowerSwaps is
// set). Two-qubit gates on non-couplers are an error — run a remapper
// first.
func Pass(c *circuit.Circuit, dev *arch.Device, lowerSwaps bool) (*circuit.Circuit, Result, error) {
	var res Result
	out := &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	for i, g := range c.Gates {
		switch {
		case g.Op == circuit.OpSwap && (lowerSwaps || dev.Directed()):
			a, b := g.Qubits[0], g.Qubits[1]
			if !dev.Adjacent(a, b) {
				return nil, res, fmt.Errorf("orient: gate %d (%s) addresses a non-coupler", i, g)
			}
			res.LoweredSwaps++
			if err := emitCX(out, dev, a, b, &res); err != nil {
				return nil, res, fmt.Errorf("orient: gate %d: %w", i, err)
			}
			if err := emitCX(out, dev, b, a, &res); err != nil {
				return nil, res, fmt.Errorf("orient: gate %d: %w", i, err)
			}
			if err := emitCX(out, dev, a, b, &res); err != nil {
				return nil, res, fmt.Errorf("orient: gate %d: %w", i, err)
			}
		case g.Op == circuit.OpCX:
			if err := emitCX(out, dev, g.Qubits[0], g.Qubits[1], &res); err != nil {
				return nil, res, fmt.Errorf("orient: gate %d: %w", i, err)
			}
		case g.Op.TwoQubit():
			if !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
				return nil, res, fmt.Errorf("orient: gate %d (%s) addresses a non-coupler", i, g)
			}
			out.Add(g.Clone())
		default:
			out.Add(g.Clone())
		}
	}
	return out, res, nil
}

// emitCX appends a CX control→target, H-conjugating when only the reverse
// orientation is native.
func emitCX(out *circuit.Circuit, dev *arch.Device, control, target int, res *Result) error {
	switch {
	case dev.CXAllowed(control, target):
		out.CX(control, target)
	case dev.CXAllowed(target, control):
		res.Reversed++
		out.H(control)
		out.H(target)
		out.CX(target, control)
		out.H(control)
		out.H(target)
	default:
		return fmt.Errorf("cx %d,%d addresses a non-coupler", control, target)
	}
	return nil
}
