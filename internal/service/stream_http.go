package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"codar/api"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/jobs"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
)

// streamQuery reports whether a request opted into the NDJSON streaming
// mode (?stream=1).
func streamQuery(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

// handleMapStream implements POST /v1/map?stream=1: the mapped circuit is
// delivered as NDJSON records (api.StreamRecord) while the streaming
// remapper runs, instead of one JSON body after it finishes. The
// concatenation of the header record's qasm_header with every chunk's qasm
// is byte-identical to the mapped_qasm a batch request would return
// (handlers_stream_test pins it). Streamed responses bypass the result
// store entirely — no read, no write — so an aborted stream can never
// plant a partial cache entry; the X-Codard-Cache header says "bypass".
//
// Errors before the first record use the normal envelope and status;
// errors after the stream is committed (cancel, deadline, mid-run failure)
// arrive as an in-band error record on the already-200 response, with the
// usual 499/504 accounting in /v1/stats.
func (s *Server) handleMapStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req MapRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	if serr := s.checkQuota(r, 1); serr != nil {
		s.writeError(w, serr)
		return
	}
	ctx, cancel, serr := s.requestCtx(r)
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	defer cancel()
	serr = s.serveMapStream(ctx, w, &req)
	s.stats.requests.Add(1)
	s.stats.observe(time.Since(start))
	if serr != nil {
		s.writeError(w, serr)
	}
}

// serveMapStream runs one streamed mapping. A non-nil return means the
// stream was never committed (headers not sent) and the caller should
// answer with the normal error envelope; once records are flowing, every
// outcome — including failure — is settled in-band and nil is returned.
func (s *Server) serveMapStream(ctx context.Context, w http.ResponseWriter, req *MapRequest) *svcError {
	if req.Portfolio != nil {
		return errBadRequest("portfolio mode cannot stream; drop stream=1 or the portfolio block")
	}
	if req.Baseline != nil && *req.Baseline {
		return errBadRequest("baseline comparison needs the whole mapped circuit; drop baseline or stream=1")
	}
	off := false
	req.Baseline = &off
	if _, serr := normalizeRequest(req); serr != nil {
		return serr
	}
	dev, serr := s.resolveDevice(req)
	if serr != nil {
		return serr
	}
	var cal *Calibration
	if req.Calibrated {
		var ok bool
		if cal, ok = s.registry.Calibration(dev.Name); !ok {
			return errBadRequest("device %q has no calibration; upload one via POST /v1/devices/%s/calibration", dev.Name, req.Arch)
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		return errInternal("response writer cannot stream")
	}

	release, serr := s.acquire(ctx)
	if serr != nil {
		return serr
	}
	defer release()

	if err := s.cfg.Chaos.BeforeMap(ctx); err != nil {
		return mapSvcError("chaos", err)
	}
	parsed, err := qasm.Parse(req.QASM)
	if err != nil {
		return errBadQASM("bad qasm: %v", err)
	}
	c := circuit.Decompose(parsed)
	if c.NumQubits > dev.NumQubits {
		return errBadQASM("circuit needs %d qubits but %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	coreOpts := core.Options{Ctx: ctx}
	sabreOpts := sabre.Options{Ctx: ctx}
	if cal != nil {
		coreOpts.Cost = cal.Cost
		sabreOpts.Cost = cal.Cost
	}
	initial, err := sabre.InitialLayout(c, dev, req.Seed, sabreOpts)
	if err != nil {
		return mapSvcError("initial layout", err)
	}
	// Measures keep their input cbits through mapping, so the output creg —
	// and with it the whole QASM preamble — is known before the run starts.
	nclb := 0
	for _, g := range c.Gates {
		if g.Op == circuit.OpMeasure && g.Cbit+1 > nclb {
			nclb = g.Cbit + 1
		}
	}

	// Commit to the stream; from here every outcome travels in-band.
	reqID := w.Header().Get(api.HeaderRequestID)
	w.Header().Set("Content-Type", api.StreamContentType)
	w.Header().Set(cacheHeader, api.CacheBypass)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(rec *api.StreamRecord) error {
		if err := enc.Encode(rec); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}
	fail := func(serr *svcError) *svcError {
		// The status is already on the wire: account the outcome and
		// best-effort an in-band error record (a vanished client simply
		// never reads it).
		s.stats.countError(serr.status, serr.code)
		emit(&api.StreamRecord{Type: api.StreamTypeError, Error: &api.ErrorBody{
			Code:      serr.envelopeCode(),
			Message:   serr.msg,
			RequestID: reqID,
		}})
		return nil
	}

	resp := &MapResponse{
		Device:      dev.Name,
		Algo:        req.Algo,
		Durations:   req.Durations,
		Seed:        req.Seed,
		InputQubits: c.NumQubits,
		InputGates:  c.Len(),
	}
	if cal != nil {
		resp.Calibration = cal.Hash
	}
	if err := emit(&api.StreamRecord{Type: api.StreamTypeHeader, Header: &api.StreamHeader{
		Device:      dev.Name,
		Algo:        req.Algo,
		Durations:   req.Durations,
		Seed:        req.Seed,
		InputQubits: c.NumQubits,
		InputGates:  c.Len(),
		QASMHeader:  qasm.Header(req.Algo, dev.NumQubits, nclb),
	}}); err != nil {
		return fail(streamSvcError(ctx, req.Algo, err))
	}

	seq := 0
	var sb strings.Builder
	sink := schedule.FuncSink(func(chunk []schedule.ScheduledGate) error {
		sb.Reset()
		for i := range chunk {
			qasm.AppendGate(&sb, chunk[i].Gate)
		}
		rec := &api.StreamRecord{Type: api.StreamTypeChunk, Chunk: &api.StreamChunk{
			Seq:   seq,
			Gates: len(chunk),
			QASM:  sb.String(),
		}}
		seq++
		return emit(rec)
	})
	switch req.Algo {
	case "codar":
		res, err := core.RemapStream(circuit.NewSliceSource(c), dev, initial, coreOpts, sink)
		if err != nil {
			return fail(streamSvcError(ctx, "codar", err))
		}
		resp.OutputGates = res.Gates
		resp.Swaps = res.SwapCount
		resp.WeightedDepth = res.Makespan
	case "sabre":
		res, err := sabre.RemapStream(circuit.NewSliceSource(c), dev, initial, sabreOpts, sink)
		if err != nil {
			return fail(streamSvcError(ctx, "sabre", err))
		}
		resp.OutputGates = res.Gates
		resp.Swaps = res.SwapCount
		resp.WeightedDepth = res.Makespan
	}
	s.stats.mappings.Inc()
	emit(&api.StreamRecord{Type: api.StreamTypeResult, Result: resp})
	return nil
}

// streamSvcError classifies a mid-stream failure: a fired request context
// keeps its transport meaning (499/504) even when the error surfaced
// through a sink write to a dead connection rather than the pipeline's own
// cancellation check.
func streamSvcError(ctx context.Context, stage string, err error) *svcError {
	if ctx.Err() != nil {
		return ctxSvcError(ctx)
	}
	return mapSvcError(stage, err)
}

// jobStreamChunkGates bounds the gate statements per chunk when a stored
// job result is replayed as a stream.
const jobStreamChunkGates = 4096

// writeJobResultStream replays a done job's stored MapResponse in the same
// NDJSON framing as /v1/map?stream=1, so async consumers share one decode
// path with the synchronous stream. The stored bytes came through the
// normal cached pipeline, so — unlike a live stream — the job's cache
// disposition is preserved in the X-Codard-Cache header.
func (s *Server) writeJobResultStream(w http.ResponseWriter, body []byte, snap jobs.Snapshot) {
	var resp MapResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		s.writeError(w, errInternal("stored job result does not decode: %v", err))
		return
	}
	header, gates := splitMappedQASM(resp.MappedQASM)
	resp.MappedQASM = ""
	w.Header().Set("Content-Type", api.StreamContentType)
	w.Header().Set(cacheHeader, snap.Cache)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(&api.StreamRecord{Type: api.StreamTypeHeader, Header: &api.StreamHeader{
		Device:      resp.Device,
		Algo:        resp.Algo,
		Durations:   resp.Durations,
		Seed:        resp.Seed,
		InputQubits: resp.InputQubits,
		InputGates:  resp.InputGates,
		QASMHeader:  header,
	}})
	for seq := 0; len(gates) > 0; seq++ {
		n := jobStreamChunkGates
		if n > len(gates) {
			n = len(gates)
		}
		enc.Encode(&api.StreamRecord{Type: api.StreamTypeChunk, Chunk: &api.StreamChunk{
			Seq:   seq,
			Gates: n,
			QASM:  strings.Join(gates[:n], ""),
		}})
		gates = gates[n:]
	}
	enc.Encode(&api.StreamRecord{Type: api.StreamTypeResult, Result: &resp})
}

// splitMappedQASM splits a rendered circuit into its preamble (version,
// include, name comment, register declarations) and its gate statement
// lines, each line keeping its terminator.
func splitMappedQASM(src string) (header string, gates []string) {
	lines := strings.SplitAfter(src, "\n")
	k := 0
	for k < len(lines) {
		t := strings.TrimSpace(lines[k])
		if t == "" || strings.HasPrefix(t, "OPENQASM") || strings.HasPrefix(t, "include") ||
			strings.HasPrefix(t, "//") || strings.HasPrefix(t, "qreg") || strings.HasPrefix(t, "creg") {
			k++
			continue
		}
		break
	}
	header = strings.Join(lines[:k], "")
	for _, l := range lines[k:] {
		if strings.TrimSpace(l) != "" {
			gates = append(gates, l)
		}
	}
	return header, gates
}
