package service

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"codar/api"
	"codar/internal/metrics"
)

// latencyWindow is the number of recent request latencies retained for the
// /v1/stats percentiles. A bounded ring keeps the stats endpoint O(window)
// and the server memory constant under sustained load.
const latencyWindow = 4096

// stats aggregates serving counters. Counters are atomics (hot path);
// the latency ring takes a short mutex per observation.
type stats struct {
	start    time.Time
	requests atomic.Uint64 // completed /v1/map requests (batch items included)
	errors   atomic.Uint64 // requests answered with a 4xx/5xx error body
	inFlight atomic.Int64  // mapping jobs currently holding a worker slot
	admitted atomic.Int64  // mapping jobs admitted (queued + executing)

	// Robustness breakdowns of the error counter (DESIGN.md §11).
	canceled      metrics.Counter // client gone before the mapping finished (499)
	deadlines     metrics.Counter // per-request deadline expired (504)
	rejected      metrics.Counter // backpressure rejections (429 queue_full)
	quotaRejected metrics.Counter // per-client quota rejections (429 quota_exceeded)
	panics        metrics.Counter // handler panics recovered to 500

	// Result-store outcomes (PR 8): mappings counts completed mapping
	// computations — cache hits and singleflight followers do not move it,
	// which is the "N identical concurrent requests map exactly once"
	// assertion. collapsed counts follower requests served from a
	// concurrent leader's bytes; handoffs counts follower retakes after a
	// canceled leader.
	mappings  metrics.Counter
	collapsed metrics.Counter
	handoffs  metrics.Counter

	mu    sync.Mutex
	ring  [latencyWindow]float64 // milliseconds
	next  int
	count uint64  // total observations (may exceed the window)
	max   float64 // all-time maximum
}

func newStats() *stats { return &stats{start: time.Now()} }

// countError tallies one error outcome: the total plus the robustness
// breakdown its status (and, for the two 429 flavours, its envelope code)
// encodes.
func (s *stats) countError(status int, code string) {
	s.errors.Add(1)
	switch status {
	case statusClientClosedRequest:
		s.canceled.Inc()
	case http.StatusGatewayTimeout:
		s.deadlines.Inc()
	case http.StatusTooManyRequests:
		if code == api.CodeQuotaExceeded {
			s.quotaRejected.Inc()
		} else {
			s.rejected.Inc()
		}
	}
}

// observe records one request latency.
func (s *stats) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = ms
	s.next = (s.next + 1) % latencyWindow
	s.count++
	if ms > s.max {
		s.max = ms
	}
	s.mu.Unlock()
}

// LatencySummary is the /v1/stats latency block, in milliseconds, computed
// over the most recent latencyWindow observations (max is all-time). The
// wire shape lives in package api.
type LatencySummary = api.LatencySummary

// latencies snapshots the ring and summarises it.
func (s *stats) latencies() LatencySummary {
	s.mu.Lock()
	n := int(s.count)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, s.ring[:n])
	sum := LatencySummary{Count: s.count, Max: s.max}
	s.mu.Unlock()
	if n == 0 {
		return sum
	}
	sort.Float64s(window)
	sum.P50 = metrics.Percentile(window, 0.50)
	sum.P90 = metrics.Percentile(window, 0.90)
	sum.P99 = metrics.Percentile(window, 0.99)
	return sum
}

// Percentile reads the nearest-rank percentile from an ascending-sorted
// slice. Kept as a forwarder to metrics.Percentile (the shared
// implementation) for existing importers.
func Percentile(sorted []float64, p float64) float64 { return metrics.Percentile(sorted, p) }
