package service

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"codar/internal/metrics"
)

// latencyWindow is the number of recent request latencies retained for the
// /v1/stats percentiles. A bounded ring keeps the stats endpoint O(window)
// and the server memory constant under sustained load.
const latencyWindow = 4096

// stats aggregates serving counters. Counters are atomics (hot path);
// the latency ring takes a short mutex per observation.
type stats struct {
	start    time.Time
	requests atomic.Uint64 // completed /v1/map requests (batch items included)
	errors   atomic.Uint64 // requests answered with a 4xx/5xx error body
	inFlight atomic.Int64  // mapping jobs currently holding a worker slot
	admitted atomic.Int64  // mapping jobs admitted (queued + executing)

	// Robustness breakdowns of the error counter (DESIGN.md §11).
	canceled  metrics.Counter // client gone before the mapping finished (499)
	deadlines metrics.Counter // per-request deadline expired (504)
	rejected  metrics.Counter // backpressure rejections (429)
	panics    metrics.Counter // handler panics recovered to 500

	mu    sync.Mutex
	ring  [latencyWindow]float64 // milliseconds
	next  int
	count uint64  // total observations (may exceed the window)
	max   float64 // all-time maximum
}

func newStats() *stats { return &stats{start: time.Now()} }

// countError tallies one error outcome: the total plus the robustness
// breakdown its status encodes.
func (s *stats) countError(status int) {
	s.errors.Add(1)
	switch status {
	case statusClientClosedRequest:
		s.canceled.Inc()
	case http.StatusGatewayTimeout:
		s.deadlines.Inc()
	case http.StatusTooManyRequests:
		s.rejected.Inc()
	}
}

// observe records one request latency.
func (s *stats) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = ms
	s.next = (s.next + 1) % latencyWindow
	s.count++
	if ms > s.max {
		s.max = ms
	}
	s.mu.Unlock()
}

// LatencySummary is the /v1/stats latency block, in milliseconds, computed
// over the most recent latencyWindow observations (max is all-time).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// latencies snapshots the ring and summarises it.
func (s *stats) latencies() LatencySummary {
	s.mu.Lock()
	n := int(s.count)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, s.ring[:n])
	sum := LatencySummary{Count: s.count, Max: s.max}
	s.mu.Unlock()
	if n == 0 {
		return sum
	}
	sort.Float64s(window)
	sum.P50 = Percentile(window, 0.50)
	sum.P90 = Percentile(window, 0.90)
	sum.P99 = Percentile(window, 0.99)
	return sum
}

// Percentile reads the nearest-rank percentile from an ascending-sorted
// slice. Exported so cmd/codarload reports client-side latencies with the
// same rank convention the server uses in /v1/stats.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
