package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"codar/internal/chaos"
	"codar/internal/testutil"
)

// jsonBody marshals a request body for tests that need raw header control.
func jsonBody(t *testing.T, v interface{}) *bytes.Reader {
	t.Helper()
	enc, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(enc)
}

// waitInFlight polls until the server reports n executing mapping jobs.
func waitInFlight(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.stats.inFlight.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d in-flight jobs (at %d)", n, s.stats.inFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// mapReqBody is the canonical request every hardening test maps.
func mapReqBody() MapRequest {
	return MapRequest{QASM: ghzQASM, Arch: "tokyo"}
}

// TestBackpressure429: with one worker held and no queue, the next request
// is rejected immediately with 429, a Retry-After header and the rejected
// counter bumped — backpressure is explicit, not head-of-line blocking.
func TestBackpressure429(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: -1, // no queue: a busy pool rejects
		Chaos:    &chaos.Injector{SlowMapper: time.Second},
	})
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- do(t, s, http.MethodPost, "/v1/map", mapReqBody()) }()
	waitInFlight(t, s, 1)

	// Distinct circuit so the second request cannot be answered from cache.
	req2 := mapReqBody()
	req2.Seed = 7
	w := do(t, s, http.MethodPost, "/v1/map", req2)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.stats.rejected.Load(); got == 0 {
		t.Error("rejected counter not bumped")
	}
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("held request finished with %d: %s", w.Code, w.Body.String())
	}
}

// TestQueueWaitBudget429: an admitted request that cannot get a worker slot
// within QueueWait is rejected rather than parked indefinitely.
func TestQueueWaitBudget429(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers:   1,
		MaxQueue:  4,
		QueueWait: 30 * time.Millisecond,
		Chaos:     &chaos.Injector{SlowMapper: time.Second},
	})
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- do(t, s, http.MethodPost, "/v1/map", mapReqBody()) }()
	waitInFlight(t, s, 1)

	req2 := mapReqBody()
	req2.Seed = 7
	start := time.Now()
	w := do(t, s, http.MethodPost, "/v1/map", req2)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body.String())
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("queue-wait rejection took %v, budget was 30ms", waited)
	}
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("held request finished with %d", w.Code)
	}
}

// TestDeadline504: a request whose X-Codard-Timeout expires mid-mapping is
// answered 504 and counted, and the failed mapping plants no cache entry.
func TestDeadline504(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 2,
		Chaos:   &chaos.Injector{SlowMapper: 500 * time.Millisecond},
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/map", jsonBody(t, mapReqBody()))
	req.Header.Set(timeoutHeader, "20ms")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body.String())
	}
	if got := s.stats.deadlines.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("timed-out mapping planted %d cache entries", n)
	}
}

// TestBadTimeoutHeader400: a malformed or non-positive deadline header is
// the client's error, reported before any mapping work.
func TestBadTimeoutHeader400(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, h := range []string{"garbage", "-5s", "0"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/map", jsonBody(t, mapReqBody()))
		req.Header.Set(timeoutHeader, h)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("header %q: status = %d, want 400", h, w.Code)
		}
	}
}

// TestTimeoutHeaderCapped: a client asking for an hours-long deadline is
// clamped to Config.MaxTimeout — it cannot hold a worker past the
// operator's bound.
func TestTimeoutHeaderCapped(t *testing.T) {
	s := newTestServer(t, Config{MaxTimeout: 50 * time.Millisecond})
	req := httptest.NewRequest(http.MethodPost, "/v1/map", nil)
	req.Header.Set(timeoutHeader, "1h")
	ctx, cancel, serr := s.requestCtx(req)
	if serr != nil {
		t.Fatal(serr)
	}
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline on the request context")
	}
	if until := time.Until(dl); until > time.Second {
		t.Fatalf("deadline %v away; header should have been clamped to 50ms", until)
	}
}

// TestClientDisconnectCancels: the client going away mid-mapping cancels
// the job (499 in the counters), plants nothing in the cache, and a retry
// of the same circuit recomputes — byte-identical to an undisturbed run.
func TestClientDisconnectCancels(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 2,
		Chaos:   &chaos.Injector{SlowMapper: 400 * time.Millisecond},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/map", jsonBody(t, mapReqBody())).WithContext(ctx)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		done <- w
	}()
	waitInFlight(t, s, 1)
	cancel()
	w := <-done
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d; body %s", w.Code, statusClientClosedRequest, w.Body.String())
	}
	if got := s.stats.canceled.Load(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("canceled mapping planted %d cache entries", n)
	}

	// The retry recomputes from scratch (miss), and a third request serves
	// the cached bytes — identical, so cancellation corrupted nothing.
	s.cfg.Chaos.SlowMapper = 0
	w2 := do(t, s, http.MethodPost, "/v1/map", mapReqBody())
	if w2.Code != http.StatusOK || w2.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("retry: status %d cache %q", w2.Code, w2.Header().Get(cacheHeader))
	}
	w3 := do(t, s, http.MethodPost, "/v1/map", mapReqBody())
	if w3.Code != http.StatusOK || w3.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("re-retry: status %d cache %q", w3.Code, w3.Header().Get(cacheHeader))
	}
	if w2.Body.String() != w3.Body.String() {
		t.Fatal("recomputed and cached bodies differ")
	}
}

// TestPanicRecovery500: a panicking mapping job answers 500 with the
// process — and the cache — intact: the server keeps serving, and the
// poisoned request left no cache entry behind.
func TestPanicRecovery500(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 1,
		Chaos:   &chaos.Injector{PanicEvery: 2}, // 2nd, 4th, ... jobs panic
	})
	w1 := do(t, s, http.MethodPost, "/v1/map", mapReqBody())
	if w1.Code != http.StatusOK {
		t.Fatalf("first map: status %d", w1.Code)
	}
	req2 := mapReqBody()
	req2.Seed = 7
	w2 := do(t, s, http.MethodPost, "/v1/map", req2)
	if w2.Code != http.StatusInternalServerError {
		t.Fatalf("second map: status %d, want 500; body %s", w2.Code, w2.Body.String())
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if w := do(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", w.Code)
	}
	// The panicked request released its worker slot: the pool still serves.
	w3 := do(t, s, http.MethodPost, "/v1/map", mapReqBody())
	if w3.Code != http.StatusOK || w3.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("post-panic map: status %d cache %q", w3.Code, w3.Header().Get(cacheHeader))
	}
	if w1.Body.String() != w3.Body.String() {
		t.Fatal("cache corrupted across a panic")
	}
}

// TestBatchCancelStopsDispatch: once the batch request's deadline fires,
// in-flight items abort and queued items are never dispatched — every item
// reports the classified status, none are silently zero or still mapping.
func TestBatchCancelStopsDispatch(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 1,
		Chaos:   &chaos.Injector{SlowMapper: 200 * time.Millisecond},
	})
	batch := BatchRequest{}
	for i := 0; i < 4; i++ {
		r := mapReqBody()
		r.Seed = int64(i + 1)
		batch.Requests = append(batch.Requests, r)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/map/batch", jsonBody(t, batch))
	req.Header.Set(timeoutHeader, "50ms")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d; body %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 4 {
		t.Fatalf("got %d items, want 4", len(resp.Items))
	}
	for i, item := range resp.Items {
		if item.Status != http.StatusGatewayTimeout {
			t.Errorf("item %d: status %d (%s), want 504", i, item.Status, item.Error)
		}
	}
	if got := s.stats.deadlines.Load(); got == 0 {
		t.Error("deadline counter not bumped by the batch")
	}
}

// TestBatchSurvivesItemPanic: a panicking item becomes that item's 500 row;
// its siblings complete normally.
func TestBatchSurvivesItemPanic(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 1, // serial pool: the panic cadence is deterministic
		Chaos:   &chaos.Injector{PanicEvery: 2},
	})
	batch := BatchRequest{}
	for i := 0; i < 3; i++ {
		r := mapReqBody()
		r.Seed = int64(i + 1)
		batch.Requests = append(batch.Requests, r)
	}
	w := do(t, s, http.MethodPost, "/v1/map/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d", w.Code)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{http.StatusOK, http.StatusInternalServerError, http.StatusOK}
	for i, item := range resp.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status %d, want %d (%s)", i, item.Status, wantStatus[i], item.Error)
		}
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

// TestDrainGraceful: with nothing in flight, Drain returns false
// immediately and the server keeps working.
func TestDrainGraceful(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	if s.Drain(ctx) {
		t.Fatal("idle drain reported a hard cancel")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("idle drain did not return promptly")
	}
}

// TestDrainHardCancelsInFlight: a drain whose grace window expires fires
// the base context — the in-flight mapping aborts through the cancellation
// plumbing, Drain reports the hard cancel, and no goroutine is stranded.
func TestDrainHardCancelsInFlight(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Workers: 1,
		Chaos:   &chaos.Injector{SlowMapper: 5 * time.Second},
	})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- do(t, s, http.MethodPost, "/v1/map", mapReqBody()) }()
	waitInFlight(t, s, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if !s.Drain(ctx) {
		t.Fatal("drain with a held worker reported graceful")
	}
	w := <-done
	if w.Code != statusClientClosedRequest && w.Code != http.StatusGatewayTimeout {
		t.Fatalf("hard-canceled request answered %d: %s", w.Code, w.Body.String())
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("hard-canceled mapping planted %d cache entries", n)
	}
}

// TestStatsExposesRobustnessCounters: the new counters are present in the
// /v1/stats body with their JSON names.
func TestStatsExposesRobustnessCounters(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodGet, "/v1/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d", w.Code)
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"canceled", "deadline_exceeded", "rejected", "panics", "queue_depth", "queue_capacity"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats body missing %q", key)
		}
	}
}
