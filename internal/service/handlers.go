package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/placement"
	"codar/internal/pool"
	"codar/internal/portfolio"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
)

// cacheHeader reports cache disposition per response: "hit", "miss", or
// "bypass" (endpoints that never touch the cache). The disposition lives in
// a header — not the body — so hits can return the stored bytes verbatim.
const cacheHeader = "X-Codard-Cache"

// MapRequest is the POST /v1/map body.
type MapRequest struct {
	// QASM is the OpenQASM 2.0 source of the circuit to map.
	QASM string `json:"qasm"`
	// Arch names the target device: a builtin (tokyo, melbourne, enfield,
	// sycamore, q5, qx4, grid3x4, linear9, ring12, ...) or an uploaded one.
	Arch string `json:"arch"`
	// Algo selects the mapper: "codar" (default) or "sabre".
	Algo string `json:"algo,omitempty"`
	// Durations names a duration preset (superconducting, iontrap,
	// neutralatom, uniform); empty keeps the device's own durations.
	Durations string `json:"durations,omitempty"`
	// Seed drives the SABRE reverse-traversal initial layout; 0 selects the
	// experiments default (1).
	Seed int64 `json:"seed,omitempty"`
	// Baseline requests a SABRE baseline mapping for the speedup metric.
	// Defaults to true when Algo is codar (nil = default).
	Baseline *bool `json:"baseline,omitempty"`
	// Calibrated requests fidelity-weighted mapping under the device's
	// uploaded calibration snapshot (POST /v1/devices/{name}/calibration).
	// 400 when the device has none. Default false: uncalibrated requests
	// are untouched by calibration uploads, bytes included.
	Calibrated bool `json:"calibrated,omitempty"`
	// Portfolio, when present, replaces the single-shot pipeline with the
	// multi-start portfolio search (internal/portfolio): seeds × placements
	// × algorithms race, the objective picks the winner, and the response
	// gains per-candidate stats. Algo, Seed and Baseline do not affect a
	// portfolio mapping — they are canonicalized out of the cache key —
	// but invalid enum values (e.g. an unknown algo) are still rejected.
	// The spec (normalized) is folded into the result-cache key.
	Portfolio *PortfolioSpec `json:"portfolio,omitempty"`
	// pspec is the normalized portfolio spec (set by normalize when
	// Portfolio is present).
	pspec *portfolio.Spec
}

// PortfolioSpec is the portfolio block of a MapRequest.
type PortfolioSpec struct {
	// Seeds drive the seeded placement methods; empty selects the package
	// default ({1, 2}).
	Seeds []int64 `json:"seeds,omitempty"`
	// Placements names the initial-layout strategies (trivial, random,
	// dense, sabre-reverse); empty selects all four.
	Placements []string `json:"placements,omitempty"`
	// Algorithms names the mappers (codar, sabre); empty selects both.
	Algorithms []string `json:"algorithms,omitempty"`
	// Objective is min-depth (default), min-swaps, or max-esp (requires
	// calibrated: true).
	Objective string `json:"objective,omitempty"`
}

// maxPortfolioCandidates bounds the candidate grid of one request: the
// portfolio runs serially inside one worker-pool slot, so the grid size is
// the request's cost multiplier.
const maxPortfolioCandidates = 64

// spec resolves the request block into a normalized portfolio.Spec
// (defaults applied; calibration attached by the caller).
func (p *PortfolioSpec) spec() (portfolio.Spec, *svcError) {
	s := portfolio.Spec{Seeds: p.Seeds}
	if p.Objective != "" {
		obj, err := portfolio.ParseObjective(p.Objective)
		if err != nil {
			return s, errBadRequest("%v", err)
		}
		s.Objective = obj
	}
	known := placement.Methods()
	for _, name := range p.Placements {
		m := placement.Method(name)
		ok := false
		for _, k := range known {
			if m == k {
				ok = true
				break
			}
		}
		if !ok {
			return s, errBadRequest("unknown placement %q (want trivial, random, dense or sabre-reverse)", name)
		}
		s.Placements = append(s.Placements, m)
	}
	for _, name := range p.Algorithms {
		a, err := portfolio.ParseAlgorithm(name)
		if err != nil {
			return s, errBadRequest("%v", err)
		}
		s.Algorithms = append(s.Algorithms, a)
	}
	s = s.Normalized()
	if k := len(s.Seeds) * len(s.Placements) * len(s.Algorithms); k > maxPortfolioCandidates {
		return s, errBadRequest("portfolio grid of %d candidates exceeds limit %d", k, maxPortfolioCandidates)
	}
	return s, nil
}

// key renders the normalized spec canonically for the result-cache key.
func specKey(s portfolio.Spec) string {
	var b strings.Builder
	b.WriteString("seeds=")
	for i, seed := range s.Seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", seed)
	}
	b.WriteString(";placements=")
	for i, m := range s.Placements {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(m))
	}
	b.WriteString(";algorithms=")
	for i, a := range s.Algorithms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(a))
	}
	fmt.Fprintf(&b, ";objective=%s", s.Objective)
	return b.String()
}

// MapResponse is the POST /v1/map body on success.
type MapResponse struct {
	MappedQASM string `json:"mapped_qasm"`
	Device     string `json:"device"`
	Algo       string `json:"algo"`
	Durations  string `json:"durations,omitempty"`
	Seed       int64  `json:"seed"`

	InputQubits   int `json:"input_qubits"`
	InputGates    int `json:"input_gates"`
	OutputGates   int `json:"output_gates"`
	Swaps         int `json:"swaps"`
	Depth         int `json:"depth"`
	WeightedDepth int `json:"weighted_depth"`

	// Baseline block (present when a SABRE baseline was computed):
	// Speedup is baseline weighted depth / this mapper's weighted depth,
	// the paper's Fig 8 y-axis.
	BaselineWeightedDepth int     `json:"baseline_weighted_depth,omitempty"`
	BaselineSwaps         int     `json:"baseline_swaps,omitempty"`
	Speedup               float64 `json:"speedup,omitempty"`

	// Calibration block (present on calibrated requests): the snapshot
	// hash the mapping was computed under, and the estimated success
	// probabilities of this mapper's output (and the baseline's, when one
	// was computed). The ESP fields are pointers so that a legitimate
	// estimate of exactly 0 (deep circuits underflow the survival product)
	// is still serialised rather than dropped by omitempty — presence
	// tracks "was calibrated", not "is non-zero".
	Calibration        string   `json:"calibration,omitempty"`
	EstSuccess         *float64 `json:"est_success,omitempty"`
	BaselineEstSuccess *float64 `json:"baseline_est_success,omitempty"`

	// Portfolio block (present on portfolio requests): the objective, the
	// winning candidate, and one stats row per grid point.
	Portfolio *PortfolioStats `json:"portfolio,omitempty"`
}

// PortfolioStats is the portfolio block of a MapResponse. The winner's own
// stats row is candidates[winner_index] — it is not duplicated.
type PortfolioStats struct {
	Objective   string             `json:"objective"`
	WinnerIndex int                `json:"winner_index"`
	Completed   int                `json:"completed"`
	Candidates  []portfolio.Report `json:"candidates"`
}

// WinnerReport returns the winning candidate's stats row.
func (p *PortfolioStats) WinnerReport() portfolio.Report { return p.Candidates[p.WinnerIndex] }

// normalize applies request defaults and validates enum fields.
func (req *MapRequest) normalize() *svcError {
	if req.QASM == "" {
		return errBadRequest("missing qasm")
	}
	if req.Arch == "" {
		return errBadRequest("missing arch")
	}
	if req.Algo == "" {
		req.Algo = "codar"
	}
	if req.Algo != "codar" && req.Algo != "sabre" {
		return errBadRequest("unknown algo %q (want codar or sabre)", req.Algo)
	}
	if req.Durations != "" {
		if _, ok := durationsByName(req.Durations); !ok {
			return errBadRequest("unknown durations preset %q (want superconducting, iontrap, neutralatom or uniform)", req.Durations)
		}
	}
	if req.Seed == 0 {
		req.Seed = experiments.Seed
	}
	// The baseline is a SABRE comparison, so it only makes sense for the
	// codar mapper; for sabre it is forced off (not just defaulted) so
	// {algo: sabre, baseline: true} and plain {algo: sabre} share one
	// cache entry instead of duplicating identical bytes.
	b := req.Algo == "codar"
	if req.Baseline != nil && !*req.Baseline {
		b = false
	}
	if req.Portfolio != nil {
		// Portfolio mode races both algorithms itself; the single-shot
		// baseline is forced off (not just defaulted) and the ignored
		// Algo/Seed fields are canonicalized, so spec-equal requests share
		// one cache entry no matter how the ignored fields were spelled.
		b = false
		req.Algo = "codar"
		req.Seed = experiments.Seed
		spec, serr := req.Portfolio.spec()
		if serr != nil {
			return serr
		}
		if spec.Objective == portfolio.ObjectiveMaxESP && !req.Calibrated {
			return errBadRequest("portfolio objective max-esp needs calibrated: true")
		}
		req.pspec = &spec
	}
	req.Baseline = &b
	return nil
}

// cacheKey derives the result-cache key. Every field that can change the
// mapped output participates: the circuit text (hashed), the resolved
// device name, the algorithm, the durations preset, the seed, the baseline
// flag and — on calibrated requests — the calibration snapshot hash. Seed
// and durations are load-bearing — the initial layout is a function of the
// seed, and the durations steer CODAR's lock-aware routing (DESIGN.md §7).
// The calibration hash is equally load-bearing: the cost model reshapes
// placement and routing, and re-uploading a snapshot must invalidate every
// result computed under the old one (DESIGN.md §8). calHash is empty for
// uncalibrated requests, which therefore keep their pre-calibration keys.
func (req *MapRequest) cacheKey(deviceName, calHash string) string {
	h := sha256.New()
	h.Write([]byte(req.QASM))
	fmt.Fprintf(h, "\x00%s\x00%s\x00%s\x00%d\x00%t\x00%s", deviceName, req.Algo, req.Durations, req.Seed, *req.Baseline, calHash)
	// Portfolio requests key on the *normalized* spec, so an explicit
	// spelling of the defaults shares its entry with the empty block.
	if req.pspec != nil {
		fmt.Fprintf(h, "\x00portfolio:%s", specKey(*req.pspec))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// resolveDevice resolves the request's device and duration preset into a
// ready-to-map device (shallow-copied when the preset overrides durations).
func (s *Server) resolveDevice(req *MapRequest) (*arch.Device, *svcError) {
	dev, err := s.registry.Resolve(req.Arch)
	if err != nil {
		return nil, errNotFound("%v", err)
	}
	if req.Durations != "" {
		d, ok := durationsByName(req.Durations)
		if !ok {
			return nil, errBadRequest("unknown durations preset %q", req.Durations)
		}
		dev = withDurations(dev, d)
	}
	return dev, nil
}

// mapOne runs the full mapping pipeline for one normalized request on an
// already-resolved device, under the device's calibration when cal is
// non-nil. The context cancels the mapping mid-run (client disconnect,
// deadline, drain). It is pure with respect to server state (no cache, no
// counters), so the single and batch paths share it.
func (s *Server) mapOne(ctx context.Context, req *MapRequest, dev *arch.Device, cal *Calibration) (*MapResponse, *svcError) {
	if err := s.cfg.Chaos.BeforeMap(ctx); err != nil {
		return nil, mapSvcError("chaos", err)
	}
	parsed, err := qasm.Parse(req.QASM)
	if err != nil {
		return nil, errBadRequest("bad qasm: %v", err)
	}
	c := circuit.Decompose(parsed)
	if c.NumQubits > dev.NumQubits {
		return nil, errBadRequest("circuit needs %d qubits but %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	resp := &MapResponse{
		Device:      dev.Name,
		Algo:        req.Algo,
		Durations:   req.Durations,
		Seed:        req.Seed,
		InputQubits: c.NumQubits,
		InputGates:  c.Len(),
	}
	// The portfolio generates its own placements per candidate, so it
	// branches off before the single-shot initial layout is computed.
	if req.pspec != nil {
		return s.mapPortfolio(ctx, req, dev, cal, c, resp)
	}
	coreOpts := core.Options{Ctx: ctx}
	sabreOpts := sabre.Options{Ctx: ctx}
	if cal != nil {
		coreOpts.Cost = cal.Cost
		sabreOpts.Cost = cal.Cost
	}
	initial, err := sabre.InitialLayout(c, dev, req.Seed, sabreOpts)
	if err != nil {
		return nil, mapSvcError("initial layout", err)
	}
	var mapped *circuit.Circuit
	switch req.Algo {
	case "codar":
		res, err := core.Remap(c, dev, initial, coreOpts)
		if err != nil {
			return nil, mapSvcError("codar", err)
		}
		mapped = res.Circuit
		resp.Swaps = res.SwapCount
	case "sabre":
		res, err := sabre.Remap(c, dev, initial, sabreOpts)
		if err != nil {
			return nil, mapSvcError("sabre", err)
		}
		mapped = res.Circuit
		resp.Swaps = res.SwapCount
	}
	resp.MappedQASM = qasm.Write(mapped)
	resp.OutputGates = mapped.Len()
	resp.Depth = mapped.Depth()
	wd, esp, serr := depthAndESP(mapped, dev, cal)
	if serr != nil {
		return nil, serr
	}
	resp.WeightedDepth = wd
	resp.EstSuccess = esp
	if cal != nil {
		resp.Calibration = cal.Hash
	}
	if *req.Baseline && req.Algo == "codar" {
		base, err := sabre.Remap(c, dev, initial, sabreOpts)
		if err != nil {
			return nil, mapSvcError("sabre baseline", err)
		}
		resp.BaselineWeightedDepth, resp.BaselineEstSuccess, serr = depthAndESP(base.Circuit, dev, cal)
		if serr != nil {
			return nil, serr
		}
		resp.BaselineSwaps = base.SwapCount
		if resp.WeightedDepth > 0 {
			resp.Speedup = float64(resp.BaselineWeightedDepth) / float64(resp.WeightedDepth)
		}
	}
	return resp, nil
}

// mapPortfolio answers a portfolio-mode request: the multi-start search
// runs serially inside the caller's worker-pool slot (Workers: 1, so the
// service-wide mapping concurrency stays capped at cfg.Workers), with early
// abandon off — concurrent cold computations of one cache key must produce
// byte-identical responses, and which losers get abandoned is the one
// timing-dependent part of a portfolio report (DESIGN.md §9).
func (s *Server) mapPortfolio(ctx context.Context, req *MapRequest, dev *arch.Device, cal *Calibration, c *circuit.Circuit, resp *MapResponse) (*MapResponse, *svcError) {
	spec := *req.pspec
	spec.Ctx = ctx
	spec.Workers = 1
	spec.EarlyAbandon = false
	if cal != nil {
		spec.Snapshot = cal.Snap
		spec.Codar.Cost = cal.Cost
		spec.Sabre.Cost = cal.Cost
	}
	pres, err := portfolio.Run(c, dev, spec)
	if err != nil {
		return nil, mapSvcError("portfolio", err)
	}
	w := pres.Winner
	wr := pres.WinnerReport()
	resp.Algo = string(wr.Algorithm)
	resp.Seed = wr.Seed
	resp.MappedQASM = qasm.Write(w.Circuit)
	resp.OutputGates = w.Circuit.Len()
	resp.Depth = w.Circuit.Depth()
	resp.Swaps = w.SwapCount
	resp.WeightedDepth = w.Depth
	if cal != nil {
		esp := w.ESP
		resp.EstSuccess = &esp
		resp.Calibration = cal.Hash
	}
	resp.Portfolio = &PortfolioStats{
		Objective:   string(pres.Objective),
		WinnerIndex: pres.WinnerIndex,
		Completed:   pres.Completed,
		Candidates:  pres.Candidates,
	}
	return resp, nil
}

// depthAndESP computes a mapped circuit's weighted depth and — when a
// calibration is attached — its estimated success probability. The ESP
// needs the full ASAP schedule and its makespan IS the weighted depth, so
// calibrated requests build the schedule once and read both from it;
// uncalibrated ones keep the allocation-free WeightedDepth pass and return
// a nil ESP.
func depthAndESP(c *circuit.Circuit, dev *arch.Device, cal *Calibration) (int, *float64, *svcError) {
	if cal == nil {
		return schedule.WeightedDepth(c, dev.Durations), nil, nil
	}
	sched := schedule.ASAP(c, dev.Durations)
	esp, err := cal.Snap.Success(sched, dev)
	if err != nil {
		return 0, nil, &svcError{status: http.StatusInternalServerError, msg: fmt.Sprintf("success estimate: %v", err)}
	}
	return sched.Makespan, &esp, nil
}

// mapBytes answers one map request with the rendered response body,
// serving from the cache when possible. On a miss, the mapping job is
// admitted (acquire: bounded queue, 429 beyond it) and runs inside a
// worker-pool slot under ctx; the marshalled bytes are cached so a hit is
// byte-identical to the original response. A canceled or failed job never
// reaches the cache — Put is only on the success path — so cancellation
// cannot plant partial entries.
func (s *Server) mapBytes(ctx context.Context, req *MapRequest) (body []byte, hit bool, serr *svcError) {
	if serr := req.normalize(); serr != nil {
		return nil, false, serr
	}
	// Resolve before hashing so aliases (tokyo, q20, ibm-q20-tokyo) share
	// one cache entry, and unknown devices 404 without burning a miss.
	dev, serr := s.resolveDevice(req)
	if serr != nil {
		return nil, false, serr
	}
	var cal *Calibration
	if req.Calibrated {
		var ok bool
		if cal, ok = s.registry.Calibration(dev.Name); !ok {
			return nil, false, errBadRequest("device %q has no calibration; upload one via POST /v1/devices/%s/calibration", dev.Name, req.Arch)
		}
	}
	calHash := ""
	if cal != nil {
		calHash = cal.Hash
	}
	key := req.cacheKey(dev.Name, calHash)
	if cached, ok := s.cache.Get(key); ok {
		return cached, true, nil
	}
	release, serr := s.acquire(ctx)
	if serr != nil {
		return nil, false, serr
	}
	defer release()
	resp, serr := s.mapOne(ctx, req, dev, cal)
	if serr != nil {
		return nil, false, serr
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, false, &svcError{status: http.StatusInternalServerError, msg: "encoding failure"}
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	return body, false, nil
}

// handleMap implements POST /v1/map.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "map is POST-only"})
		return
	}
	start := time.Now()
	var req MapRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	ctx, cancel, serr := s.requestCtx(r)
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	defer cancel()
	body, fromCache, serr := s.mapBytes(ctx, &req)
	s.stats.requests.Add(1)
	s.stats.observe(time.Since(start))
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if fromCache {
		w.Header().Set(cacheHeader, "hit")
	} else {
		w.Header().Set(cacheHeader, "miss")
	}
	w.Write(body)
}

// BatchRequest is the POST /v1/map/batch body.
type BatchRequest struct {
	Requests []MapRequest `json:"requests"`
}

// BatchItem is one element of the batch response: either a result or an
// error, mirroring the single-request status codes.
type BatchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Status int             `json:"status"`
	Cached bool            `json:"cached"`
}

// BatchResponse is the POST /v1/map/batch body: items in request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// handleMapBatch implements POST /v1/map/batch: the circuits fan out
// across the worker pool via pool.RunCtx (results land in pre-indexed
// slots, so concurrency never reorders the response), while the per-item
// cache path is identical to the single endpoint. The request context
// governs the whole batch: once it fires — client disconnect, deadline,
// drain — in-flight items abort mid-mapping and queued items are never
// dispatched; undispatched items report the classified status instead of
// silently burning workers on a dead request.
func (s *Server) handleMapBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "map/batch is POST-only"})
		return
	}
	var req BatchRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	n := len(req.Requests)
	if n == 0 {
		s.writeError(w, errBadRequest("empty batch"))
		return
	}
	if max := s.cfg.maxBatch(); n > max {
		s.writeError(w, errBadRequest("batch of %d exceeds limit %d", n, max))
		return
	}
	ctx, cancel, serr := s.requestCtx(r)
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	defer cancel()
	items := make([]BatchItem, n)
	// Each item acquires its own worker-pool slot inside mapBytes, so the
	// RunCtx fan-out here only bounds goroutine count; total mapping
	// concurrency stays capped at cfg.Workers across all in-flight
	// requests, single and batch alike. A panicking item (chaos or real)
	// becomes that item's 500 row, not the batch's.
	_ = pool.RunCtx(ctx, n, s.workers, func(i int) {
		start := time.Now()
		body, hit, serr := s.batchItem(ctx, &req.Requests[i])
		s.stats.requests.Add(1)
		s.stats.observe(time.Since(start))
		if serr != nil {
			s.stats.countError(serr.status)
			items[i] = BatchItem{Error: serr.msg, Status: serr.status}
			return
		}
		items[i] = BatchItem{Result: json.RawMessage(body), Status: http.StatusOK, Cached: hit}
	})
	// Items never dispatched (context fired first) report why instead of a
	// zero row. The response itself is still written: on a deadline the
	// client is still listening, and on a disconnect the write just fails.
	if cerr := ctx.Err(); cerr != nil {
		skipped := ctxSvcError(ctx)
		for i := range items {
			if items[i].Status == 0 {
				s.stats.countError(skipped.status)
				items[i] = BatchItem{Error: skipped.msg, Status: skipped.status}
			}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// batchItem maps one batch element, converting a panic into that item's
// 500 row (the experiments.RunBatch contract, kept across the move to
// pool.RunCtx) so one poisoned circuit cannot kill its siblings mid-pool.
func (s *Server) batchItem(ctx context.Context, req *MapRequest) (body []byte, hit bool, serr *svcError) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panics.Inc()
			s.logger.Printf("codard: panic mapping batch item: %v\n%s", rec, debug.Stack())
			body, hit, serr = nil, false, &svcError{status: http.StatusInternalServerError, msg: "internal error"}
		}
	}()
	return s.mapBytes(ctx, req)
}

// DeviceSpec is the POST /v1/devices body: an undirected coupling graph
// with optional explicit durations or a named preset.
type DeviceSpec struct {
	Name   string   `json:"name"`
	Qubits int      `json:"qubits"`
	Edges  [][2]int `json:"edges"`
	// Preset names a duration preset applied to the device; empty selects
	// superconducting (the arch.NewDevice default).
	Preset string `json:"preset,omitempty"`
	// Durations, when present, overrides Preset with explicit cycle counts.
	Durations *DurationsSpec `json:"durations,omitempty"`
}

// DurationsSpec mirrors arch.Durations for JSON upload.
type DurationsSpec struct {
	Single  int `json:"single"`
	Two     int `json:"two"`
	Swap    int `json:"swap"`
	Measure int `json:"measure"`
}

// handleDevices implements GET (list) and POST (upload) /v1/devices.
func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"devices":             s.registry.List(),
			"parametric_families": ParametricFamilies,
		})
	case http.MethodPost:
		var spec DeviceSpec
		if serr := decodeJSON(r, &spec); serr != nil {
			s.writeError(w, serr)
			return
		}
		dev, serr := buildDevice(&spec)
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		if serr := s.registry.Add(dev); serr != nil {
			s.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusCreated, infoOf(dev, false))
	default:
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "devices is GET/POST-only"})
	}
}

// CalibrationInfo summarises a stored calibration in responses.
type CalibrationInfo struct {
	Device   string `json:"device"`
	Hash     string `json:"hash"`
	Qubits   int    `json:"qubits"`
	Couplers int    `json:"couplers"`
}

func calibInfo(cal *Calibration) CalibrationInfo {
	return CalibrationInfo{
		Device:   cal.Device,
		Hash:     cal.Hash,
		Qubits:   len(cal.Snap.Qubits),
		Couplers: len(cal.Snap.Edges),
	}
}

// handleDeviceCalibration implements the /v1/devices/{name}/calibration
// sub-resource: POST (or PUT) uploads a calibration snapshot for a builtin
// or custom device — validated against its coupling graph, cost model built
// once at upload — and GET returns the stored snapshot with its hash.
// Re-uploading replaces the snapshot; the new hash re-keys every calibrated
// cache entry (DESIGN.md §8).
func (s *Server) handleDeviceCalibration(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/devices/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] != "calibration" {
		s.writeError(w, errNotFound("unknown path %q (want /v1/devices/{name}/calibration)", r.URL.Path))
		return
	}
	name := parts[0]
	switch r.Method {
	case http.MethodGet:
		dev, err := s.registry.Resolve(name)
		if err != nil {
			s.writeError(w, errNotFound("%v", err))
			return
		}
		cal, ok := s.registry.Calibration(dev.Name)
		if !ok {
			s.writeError(w, errNotFound("device %q has no calibration", dev.Name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"info":     calibInfo(cal),
			"snapshot": cal.Snap,
		})
	case http.MethodPost, http.MethodPut:
		var snap calib.Snapshot
		if serr := decodeJSON(r, &snap); serr != nil {
			s.writeError(w, serr)
			return
		}
		cal, serr := s.registry.SetCalibration(name, &snap)
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusCreated, calibInfo(cal))
	default:
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "calibration is GET/POST/PUT-only"})
	}
}

// buildDevice validates a DeviceSpec into an arch.Device.
func buildDevice(spec *DeviceSpec) (*arch.Device, *svcError) {
	if spec.Name == "" {
		return nil, errBadRequest("missing device name")
	}
	dev, err := arch.NewDevice(spec.Name, spec.Qubits, spec.Edges)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if spec.Preset != "" {
		d, ok := durationsByName(spec.Preset)
		if !ok {
			return nil, errBadRequest("unknown durations preset %q", spec.Preset)
		}
		dev.Durations = d
	}
	if spec.Durations != nil {
		dev.Durations = arch.Durations{
			Single:  spec.Durations.Single,
			Two:     spec.Durations.Two,
			Swap:    spec.Durations.Swap,
			Measure: spec.Durations.Measure,
		}
	}
	// Connectivity and duration validation happens in Registry.Add, the
	// single gate every registration path goes through.
	return dev, nil
}
