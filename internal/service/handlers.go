package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"codar/api"
	"codar/internal/arch"
	"codar/internal/calib"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/experiments"
	"codar/internal/placement"
	"codar/internal/pool"
	"codar/internal/portfolio"
	"codar/internal/qasm"
	"codar/internal/sabre"
	"codar/internal/schedule"
)

// cacheHeader reports cache disposition per response. The disposition
// lives in a header — not the body — so hits can return the stored bytes
// verbatim.
const cacheHeader = api.HeaderCache

// Cache dispositions carried by cacheHeader and BatchItem.Cache.
const (
	dispHit       = "hit"       // served from the result store
	dispMiss      = "miss"      // computed by this request (the flight leader)
	dispCollapsed = "collapsed" // computed once by a concurrent identical request and shared
)

// maxPortfolioCandidates bounds the candidate grid of one request: the
// portfolio runs serially inside one worker-pool slot, so the grid size is
// the request's cost multiplier.
const maxPortfolioCandidates = 64

// specOf resolves a request's portfolio block into a normalized
// portfolio.Spec (defaults applied; calibration attached by the caller).
func specOf(p *PortfolioSpec) (portfolio.Spec, *svcError) {
	s := portfolio.Spec{Seeds: p.Seeds}
	if p.Objective != "" {
		obj, err := portfolio.ParseObjective(p.Objective)
		if err != nil {
			return s, errBadRequest("%v", err)
		}
		s.Objective = obj
	}
	known := placement.Methods()
	for _, name := range p.Placements {
		m := placement.Method(name)
		ok := false
		for _, k := range known {
			if m == k {
				ok = true
				break
			}
		}
		if !ok {
			return s, errBadRequest("unknown placement %q (want trivial, random, dense or sabre-reverse)", name)
		}
		s.Placements = append(s.Placements, m)
	}
	for _, name := range p.Algorithms {
		a, err := portfolio.ParseAlgorithm(name)
		if err != nil {
			return s, errBadRequest("%v", err)
		}
		s.Algorithms = append(s.Algorithms, a)
	}
	s = s.Normalized()
	if k := len(s.Seeds) * len(s.Placements) * len(s.Algorithms); k > maxPortfolioCandidates {
		return s, errBadRequest("portfolio grid of %d candidates exceeds limit %d", k, maxPortfolioCandidates)
	}
	return s, nil
}

// specKey renders the normalized spec canonically for the result-cache key.
func specKey(s portfolio.Spec) string {
	var b strings.Builder
	b.WriteString("seeds=")
	for i, seed := range s.Seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", seed)
	}
	b.WriteString(";placements=")
	for i, m := range s.Placements {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(m))
	}
	b.WriteString(";algorithms=")
	for i, a := range s.Algorithms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(a))
	}
	fmt.Fprintf(&b, ";objective=%s", s.Objective)
	return b.String()
}

// normalizeRequest applies request defaults, validates enum fields, and —
// for portfolio requests — returns the normalized portfolio spec (nil
// otherwise). The spec travels beside the request rather than inside it:
// MapRequest is the pure wire type from package api now, so server-side
// derived state cannot hide in it.
func normalizeRequest(req *MapRequest) (*portfolio.Spec, *svcError) {
	if req.QASM == "" {
		return nil, errBadRequest("missing qasm")
	}
	if req.Arch == "" {
		return nil, errBadRequest("missing arch")
	}
	if req.Algo == "" {
		req.Algo = "codar"
	}
	if req.Algo != "codar" && req.Algo != "sabre" {
		return nil, errBadRequest("unknown algo %q (want codar or sabre)", req.Algo)
	}
	if req.Durations != "" {
		if _, ok := durationsByName(req.Durations); !ok {
			return nil, errBadRequest("unknown durations preset %q (want superconducting, iontrap, neutralatom or uniform)", req.Durations)
		}
	}
	if req.Seed == 0 {
		req.Seed = experiments.Seed
	}
	// The baseline is a SABRE comparison, so it only makes sense for the
	// codar mapper; for sabre it is forced off (not just defaulted) so
	// {algo: sabre, baseline: true} and plain {algo: sabre} share one
	// cache entry instead of duplicating identical bytes.
	b := req.Algo == "codar"
	if req.Baseline != nil && !*req.Baseline {
		b = false
	}
	var pspec *portfolio.Spec
	if req.Portfolio != nil {
		// Portfolio mode races both algorithms itself; the single-shot
		// baseline is forced off (not just defaulted) and the ignored
		// Algo/Seed fields are canonicalized, so spec-equal requests share
		// one cache entry no matter how the ignored fields were spelled.
		b = false
		req.Algo = "codar"
		req.Seed = experiments.Seed
		spec, serr := specOf(req.Portfolio)
		if serr != nil {
			return nil, serr
		}
		if spec.Objective == portfolio.ObjectiveMaxESP && !req.Calibrated {
			return nil, errBadRequest("portfolio objective max-esp needs calibrated: true")
		}
		pspec = &spec
	}
	req.Baseline = &b
	return pspec, nil
}

// cacheKeyFor derives the result-cache key. Every field that can change
// the mapped output participates: the circuit text (hashed), the resolved
// device name, the algorithm, the durations preset, the seed, the baseline
// flag and — on calibrated requests — the calibration snapshot hash. Seed
// and durations are load-bearing — the initial layout is a function of the
// seed, and the durations steer CODAR's lock-aware routing (DESIGN.md §7).
// The calibration hash is equally load-bearing: the cost model reshapes
// placement and routing, and re-uploading a snapshot must invalidate every
// result computed under the old one (DESIGN.md §8). calHash is empty for
// uncalibrated requests, which therefore keep their pre-calibration keys.
// The leading bytes of the key double as the store's shard selector.
func cacheKeyFor(req *MapRequest, pspec *portfolio.Spec, deviceName, calHash string) string {
	h := sha256.New()
	h.Write([]byte(req.QASM))
	fmt.Fprintf(h, "\x00%s\x00%s\x00%s\x00%d\x00%t\x00%s", deviceName, req.Algo, req.Durations, req.Seed, *req.Baseline, calHash)
	// Portfolio requests key on the *normalized* spec, so an explicit
	// spelling of the defaults shares its entry with the empty block.
	if pspec != nil {
		fmt.Fprintf(h, "\x00portfolio:%s", specKey(*pspec))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// resolveDevice resolves the request's device and duration preset into a
// ready-to-map device (shallow-copied when the preset overrides durations).
func (s *Server) resolveDevice(req *MapRequest) (*arch.Device, *svcError) {
	dev, err := s.registry.Resolve(req.Arch)
	if err != nil {
		return nil, errUnknownDevice("%v", err)
	}
	if req.Durations != "" {
		d, ok := durationsByName(req.Durations)
		if !ok {
			return nil, errBadRequest("unknown durations preset %q", req.Durations)
		}
		dev = withDurations(dev, d)
	}
	return dev, nil
}

// mapOne runs the full mapping pipeline for one normalized request on an
// already-resolved device, under the device's calibration when cal is
// non-nil. The context cancels the mapping mid-run (client disconnect,
// deadline, drain). It is pure with respect to server state (no cache, no
// counters), so the single and batch paths share it.
func (s *Server) mapOne(ctx context.Context, req *MapRequest, pspec *portfolio.Spec, dev *arch.Device, cal *Calibration) (*MapResponse, *svcError) {
	if err := s.cfg.Chaos.BeforeMap(ctx); err != nil {
		return nil, mapSvcError("chaos", err)
	}
	parsed, err := qasm.Parse(req.QASM)
	if err != nil {
		return nil, errBadQASM("bad qasm: %v", err)
	}
	c := circuit.Decompose(parsed)
	if c.NumQubits > dev.NumQubits {
		return nil, errBadQASM("circuit needs %d qubits but %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	resp := &MapResponse{
		Device:      dev.Name,
		Algo:        req.Algo,
		Durations:   req.Durations,
		Seed:        req.Seed,
		InputQubits: c.NumQubits,
		InputGates:  c.Len(),
	}
	// The portfolio generates its own placements per candidate, so it
	// branches off before the single-shot initial layout is computed.
	if pspec != nil {
		return s.mapPortfolio(ctx, pspec, dev, cal, c, resp)
	}
	coreOpts := core.Options{Ctx: ctx}
	sabreOpts := sabre.Options{Ctx: ctx}
	if cal != nil {
		coreOpts.Cost = cal.Cost
		sabreOpts.Cost = cal.Cost
	}
	initial, err := sabre.InitialLayout(c, dev, req.Seed, sabreOpts)
	if err != nil {
		return nil, mapSvcError("initial layout", err)
	}
	var mapped *circuit.Circuit
	switch req.Algo {
	case "codar":
		res, err := core.Remap(c, dev, initial, coreOpts)
		if err != nil {
			return nil, mapSvcError("codar", err)
		}
		mapped = res.Circuit
		resp.Swaps = res.SwapCount
	case "sabre":
		res, err := sabre.Remap(c, dev, initial, sabreOpts)
		if err != nil {
			return nil, mapSvcError("sabre", err)
		}
		mapped = res.Circuit
		resp.Swaps = res.SwapCount
	}
	resp.MappedQASM = qasm.Write(mapped)
	resp.OutputGates = mapped.Len()
	resp.Depth = mapped.Depth()
	wd, esp, serr := depthAndESP(mapped, dev, cal)
	if serr != nil {
		return nil, serr
	}
	resp.WeightedDepth = wd
	resp.EstSuccess = esp
	if cal != nil {
		resp.Calibration = cal.Hash
	}
	if *req.Baseline && req.Algo == "codar" {
		base, err := sabre.Remap(c, dev, initial, sabreOpts)
		if err != nil {
			return nil, mapSvcError("sabre baseline", err)
		}
		resp.BaselineWeightedDepth, resp.BaselineEstSuccess, serr = depthAndESP(base.Circuit, dev, cal)
		if serr != nil {
			return nil, serr
		}
		resp.BaselineSwaps = base.SwapCount
		if resp.WeightedDepth > 0 {
			resp.Speedup = float64(resp.BaselineWeightedDepth) / float64(resp.WeightedDepth)
		}
	}
	return resp, nil
}

// mapPortfolio answers a portfolio-mode request: the multi-start search
// runs serially inside the caller's worker-pool slot (Workers: 1, so the
// service-wide mapping concurrency stays capped at cfg.Workers), with early
// abandon off — concurrent cold computations of one cache key must produce
// byte-identical responses, and which losers get abandoned is the one
// timing-dependent part of a portfolio report (DESIGN.md §9).
func (s *Server) mapPortfolio(ctx context.Context, pspec *portfolio.Spec, dev *arch.Device, cal *Calibration, c *circuit.Circuit, resp *MapResponse) (*MapResponse, *svcError) {
	spec := *pspec
	spec.Ctx = ctx
	spec.Workers = 1
	spec.EarlyAbandon = false
	if cal != nil {
		spec.Snapshot = cal.Snap
		spec.Codar.Cost = cal.Cost
		spec.Sabre.Cost = cal.Cost
	}
	pres, err := portfolio.Run(c, dev, spec)
	if err != nil {
		return nil, mapSvcError("portfolio", err)
	}
	w := pres.Winner
	wr := pres.WinnerReport()
	resp.Algo = string(wr.Algorithm)
	resp.Seed = wr.Seed
	resp.MappedQASM = qasm.Write(w.Circuit)
	resp.OutputGates = w.Circuit.Len()
	resp.Depth = w.Circuit.Depth()
	resp.Swaps = w.SwapCount
	resp.WeightedDepth = w.Depth
	if cal != nil {
		esp := w.ESP
		resp.EstSuccess = &esp
		resp.Calibration = cal.Hash
	}
	resp.Portfolio = &PortfolioStats{
		Objective:   string(pres.Objective),
		WinnerIndex: pres.WinnerIndex,
		Completed:   pres.Completed,
		Candidates:  candidateReports(pres.Candidates),
	}
	return resp, nil
}

// candidateReports converts the portfolio engine's reports into the wire
// shape. The JSON rendering is field-for-field identical; the copy exists
// because package api must not depend on internal/portfolio.
func candidateReports(rs []portfolio.Report) []api.CandidateReport {
	out := make([]api.CandidateReport, len(rs))
	for i, r := range rs {
		out[i] = api.CandidateReport{
			Index:     r.Index,
			Seed:      r.Seed,
			Placement: string(r.Placement),
			Algorithm: string(r.Algorithm),
			Depth:     r.Depth,
			Swaps:     r.Swaps,
			ESP:       r.ESP,
			Score:     r.Score,
			Abandoned: r.Abandoned,
			Err:       r.Err,
		}
	}
	return out
}

// depthAndESP computes a mapped circuit's weighted depth and — when a
// calibration is attached — its estimated success probability. The ESP
// needs the full ASAP schedule and its makespan IS the weighted depth, so
// calibrated requests build the schedule once and read both from it;
// uncalibrated ones keep the allocation-free WeightedDepth pass and return
// a nil ESP.
func depthAndESP(c *circuit.Circuit, dev *arch.Device, cal *Calibration) (int, *float64, *svcError) {
	if cal == nil {
		return schedule.WeightedDepth(c, dev.Durations), nil, nil
	}
	sched := schedule.ASAP(c, dev.Durations)
	esp, err := cal.Snap.Success(sched, dev)
	if err != nil {
		return 0, nil, errInternal("success estimate: %v", err)
	}
	return sched.Makespan, &esp, nil
}

// mapBytes answers one map request with the rendered response body and its
// cache disposition (dispHit / dispMiss / dispCollapsed). The store's
// singleflight collapses concurrent identical cold requests: the first
// becomes the flight leader — admitted through acquire (bounded queue, 429
// beyond it), mapped inside a worker-pool slot under its own ctx — and the
// rest park on the flight without consuming worker slots, then share the
// leader's bytes. A leader that dies for reasons of its own (client gone:
// 499, deadline: 504) hands the flight off — each parked follower loops
// back and one becomes the next leader — while deterministic failures (bad
// QASM, unknown device, queue-full) are shared, so a poison request cannot
// trigger a retry stampede. A canceled or failed job never reaches the
// cache — Put is only on the success path — so cancellation cannot plant
// partial entries.
func (s *Server) mapBytes(ctx context.Context, req *MapRequest) (body []byte, disposition string, serr *svcError) {
	return s.mapBytesAdmit(ctx, req, s.acquire)
}

// admitFunc is the admission policy a mapping runs under: the synchronous
// path uses Server.acquire (bounded queue, 429 beyond it), the async jobs
// path uses Server.acquireJob (unbounded wait — the job store is the bound).
type admitFunc func(ctx context.Context) (func(), *svcError)

// mapBytesAdmit is mapBytes under an explicit admission policy.
func (s *Server) mapBytesAdmit(ctx context.Context, req *MapRequest, admit admitFunc) (body []byte, disposition string, serr *svcError) {
	pspec, serr := normalizeRequest(req)
	if serr != nil {
		return nil, "", serr
	}
	// Resolve before hashing so aliases (tokyo, q20, ibm-q20-tokyo) share
	// one cache entry, and unknown devices 404 without burning a miss.
	dev, serr := s.resolveDevice(req)
	if serr != nil {
		return nil, "", serr
	}
	var cal *Calibration
	if req.Calibrated {
		var ok bool
		if cal, ok = s.registry.Calibration(dev.Name); !ok {
			return nil, "", errBadRequest("device %q has no calibration; upload one via POST /v1/devices/%s/calibration", dev.Name, req.Arch)
		}
	}
	calHash := ""
	if cal != nil {
		calHash = cal.Hash
	}
	key := cacheKeyFor(req, pspec, dev.Name, calHash)
	for {
		cached, f, leader := s.cache.GetOrJoin(key)
		if f == nil {
			return cached, dispHit, nil
		}
		if leader {
			return s.leadFlight(ctx, f, req, pspec, dev, cal, key, admit)
		}
		// Follower: wait for the leader without holding a worker slot.
		select {
		case <-f.done:
			val, ferr, handoff := f.outcome()
			switch {
			case ferr == nil && val != nil:
				s.stats.collapsed.Inc()
				return val, dispCollapsed, nil
			case handoff:
				// The leader's failure was its own (canceled, deadline,
				// panic); retry — GetOrJoin elects the next leader, unless
				// this follower's context has fired too.
				s.stats.handoffs.Inc()
				if ctx.Err() != nil {
					return nil, "", ctxSvcError(ctx)
				}
				continue
			case ferr != nil:
				return nil, "", ferr
			default:
				return nil, "", errInternal("flight settled without result")
			}
		case <-ctx.Done():
			return nil, "", ctxSvcError(ctx)
		}
	}
}

// leadFlight runs one mapping as the singleflight leader and settles the
// flight with the outcome. The deferred abort is the panic path: if the
// mapper panics, parked followers are released in handoff mode (the panic
// propagates to the caller's recover boundary and answers this request
// alone), and one of them retries.
func (s *Server) leadFlight(ctx context.Context, f *flight, req *MapRequest, pspec *portfolio.Spec, dev *arch.Device, cal *Calibration, key string, admit admitFunc) (body []byte, disposition string, serr *svcError) {
	settled := false
	defer func() {
		if !settled {
			f.abort()
		}
	}()
	release, serr := admit(ctx)
	if serr != nil {
		// Rejections about this leader (its context fired while queueing)
		// hand off; queue-full applies to any would-be leader right now and
		// is shared, so N followers produce one 429 wave, not N retries.
		handoff := serr.status == statusClientClosedRequest || serr.status == http.StatusGatewayTimeout
		f.fail(serr, handoff)
		settled = true
		return nil, "", serr
	}
	defer release()
	resp, serr := s.mapOne(ctx, req, pspec, dev, cal)
	if serr != nil {
		handoff := serr.status == statusClientClosedRequest || serr.status == http.StatusGatewayTimeout
		f.fail(serr, handoff)
		settled = true
		return nil, "", serr
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		e := errInternal("encoding failure")
		f.fail(e, false)
		settled = true
		return nil, "", e
	}
	raw = append(raw, '\n')
	s.stats.mappings.Inc()
	s.cache.Put(key, raw)
	f.finish(raw)
	settled = true
	return raw, dispMiss, nil
}

// checkQuota charges n requests against the caller's per-client bucket
// (identified by the X-Codard-Client header; absent shares the anonymous
// bucket). Nil when admitted or when quotas are disabled.
func (s *Server) checkQuota(r *http.Request, n int) *svcError {
	if s.quotas == nil {
		return nil
	}
	client := r.Header.Get(api.HeaderClient)
	ok, retryAfter := s.quotas.allow(client, n)
	if ok {
		return nil
	}
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return errQuota(client, secs)
}

// handleMap implements POST /v1/map.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, errMethodNotAllowed(http.MethodPost, "/v1/map"))
		return
	}
	if streamQuery(r) {
		s.handleMapStream(w, r)
		return
	}
	start := time.Now()
	var req MapRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	if serr := s.checkQuota(r, 1); serr != nil {
		s.writeError(w, serr)
		return
	}
	ctx, cancel, serr := s.requestCtx(r)
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	defer cancel()
	body, disposition, serr := s.mapBytes(ctx, &req)
	s.stats.requests.Add(1)
	s.stats.observe(time.Since(start))
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, disposition)
	w.Write(body)
}

// handleMapBatch implements POST /v1/map/batch: the circuits fan out
// across the worker pool via pool.RunCtx (results land in pre-indexed
// slots, so concurrency never reorders the response), while the per-item
// cache path is identical to the single endpoint. The request context
// governs the whole batch: once it fires — client disconnect, deadline,
// drain — in-flight items abort mid-mapping and queued items are never
// dispatched; undispatched items report the classified status instead of
// silently burning workers on a dead request.
func (s *Server) handleMapBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, errMethodNotAllowed(http.MethodPost, "/v1/map/batch"))
		return
	}
	var req BatchRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	n := len(req.Requests)
	if n == 0 {
		s.writeError(w, errBadRequest("empty batch"))
		return
	}
	if max := s.cfg.maxBatch(); n > max {
		s.writeError(w, errBadRequest("batch of %d exceeds limit %d", n, max))
		return
	}
	// A batch charges its full size against the client's quota up front:
	// splitting a request into a batch must not dodge the limiter.
	if serr := s.checkQuota(r, n); serr != nil {
		s.writeError(w, serr)
		return
	}
	ctx, cancel, serr := s.requestCtx(r)
	if serr != nil {
		s.writeError(w, serr)
		return
	}
	defer cancel()
	reqID := w.Header().Get(api.HeaderRequestID)
	items := make([]BatchItem, n)
	// Each item acquires its own worker-pool slot inside mapBytes, so the
	// RunCtx fan-out here only bounds goroutine count; total mapping
	// concurrency stays capped at cfg.Workers across all in-flight
	// requests, single and batch alike. A panicking item (chaos or real)
	// becomes that item's 500 row, not the batch's.
	_ = pool.RunCtx(ctx, n, s.workers, func(i int) {
		start := time.Now()
		body, disposition, serr := s.batchItem(ctx, &req.Requests[i])
		s.stats.requests.Add(1)
		s.stats.observe(time.Since(start))
		if serr != nil {
			s.stats.countError(serr.status, serr.code)
			items[i] = batchErrorItem(serr, reqID)
			return
		}
		items[i] = BatchItem{
			Result: json.RawMessage(body),
			Status: http.StatusOK,
			Cached: disposition == dispHit,
			Cache:  disposition,
		}
	})
	// Items never dispatched (context fired first) report why instead of a
	// zero row. The response itself is still written: on a deadline the
	// client is still listening, and on a disconnect the write just fails.
	if cerr := ctx.Err(); cerr != nil {
		skipped := ctxSvcError(ctx)
		for i := range items {
			if items[i].Status == 0 {
				s.stats.countError(skipped.status, skipped.code)
				items[i] = batchErrorItem(skipped, reqID)
			}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// batchErrorItem renders one failed batch element with the same envelope
// body a standalone request would carry.
func batchErrorItem(e *svcError, reqID string) BatchItem {
	return BatchItem{
		Error: &api.ErrorBody{
			Code:      e.envelopeCode(),
			Message:   e.msg,
			RequestID: reqID,
		},
		Status: e.status,
	}
}

// batchItem maps one batch element, converting a panic into that item's
// 500 row (the experiments.RunBatch contract, kept across the move to
// pool.RunCtx) so one poisoned circuit cannot kill its siblings mid-pool.
func (s *Server) batchItem(ctx context.Context, req *MapRequest) (body []byte, disposition string, serr *svcError) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panics.Inc()
			s.logger.Printf("codard: panic mapping batch item: %v\n%s", rec, debug.Stack())
			body, disposition, serr = nil, "", errInternal("internal error")
		}
	}()
	return s.mapBytes(ctx, req)
}

// handleDevices implements GET (list) and POST (upload) /v1/devices.
func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, api.DeviceList{
			Devices:            s.registry.List(),
			ParametricFamilies: ParametricFamilies,
		})
	case http.MethodPost:
		var spec DeviceSpec
		if serr := decodeJSON(r, &spec); serr != nil {
			s.writeError(w, serr)
			return
		}
		dev, serr := buildDevice(&spec)
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		if serr := s.registry.Add(dev); serr != nil {
			s.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusCreated, infoOf(dev, false))
	default:
		s.writeError(w, errMethodNotAllowed("GET, POST", "/v1/devices"))
	}
}

func calibInfo(cal *Calibration) CalibrationInfo {
	return CalibrationInfo{
		Device:   cal.Device,
		Hash:     cal.Hash,
		Qubits:   len(cal.Snap.Qubits),
		Couplers: len(cal.Snap.Edges),
	}
}

// handleDeviceCalibration implements the /v1/devices/{name}/calibration
// sub-resource: POST (or PUT) uploads a calibration snapshot for a builtin
// or custom device — validated against its coupling graph, cost model built
// once at upload — and GET returns the stored snapshot with its hash.
// Re-uploading replaces the snapshot; the new hash re-keys every calibrated
// cache entry (DESIGN.md §8).
func (s *Server) handleDeviceCalibration(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/devices/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] != "calibration" {
		s.writeError(w, errNotFound("unknown path %q (want /v1/devices/{name}/calibration)", r.URL.Path))
		return
	}
	name := parts[0]
	switch r.Method {
	case http.MethodGet:
		dev, err := s.registry.Resolve(name)
		if err != nil {
			s.writeError(w, errUnknownDevice("%v", err))
			return
		}
		cal, ok := s.registry.Calibration(dev.Name)
		if !ok {
			s.writeError(w, errNotFound("device %q has no calibration", dev.Name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"info":     calibInfo(cal),
			"snapshot": cal.Snap,
		})
	case http.MethodPost, http.MethodPut:
		var snap calib.Snapshot
		if serr := decodeJSON(r, &snap); serr != nil {
			s.writeError(w, serr)
			return
		}
		cal, serr := s.registry.SetCalibration(name, &snap)
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusCreated, calibInfo(cal))
	default:
		s.writeError(w, errMethodNotAllowed("GET, POST, PUT", "/v1/devices/{name}/calibration"))
	}
}

// buildDevice validates a DeviceSpec into an arch.Device.
func buildDevice(spec *DeviceSpec) (*arch.Device, *svcError) {
	if spec.Name == "" {
		return nil, errBadRequest("missing device name")
	}
	dev, err := arch.NewDevice(spec.Name, spec.Qubits, spec.Edges)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if spec.Preset != "" {
		d, ok := durationsByName(spec.Preset)
		if !ok {
			return nil, errBadRequest("unknown durations preset %q", spec.Preset)
		}
		dev.Durations = d
	}
	if spec.Durations != nil {
		dev.Durations = arch.Durations{
			Single:  spec.Durations.Single,
			Two:     spec.Durations.Two,
			Swap:    spec.Durations.Swap,
			Measure: spec.Durations.Measure,
		}
	}
	// Connectivity and duration validation happens in Registry.Add, the
	// single gate every registration path goes through.
	return dev, nil
}
