package service

import (
	"bytes"
	"math/rand"
	"net/http"
	"testing"

	"codar/api"
	"codar/internal/testutil"
)

// TestPropertyJobsMatchSyncBytes is the async-path equivalence property:
// for random job mixes under random worker counts, every job result must be
// byte-identical to what a fresh server's sync path returns for the same
// request, and must share the sync path's cache key (proved by the sync
// repeat on the job server being a "hit" with the same bytes). Runs under
// -race in CI; the seed is fixed so failures reproduce.
func TestPropertyJobsMatchSyncBytes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	rng := rand.New(rand.NewSource(20260808))
	variants := []api.MapRequest{
		{QASM: ghzQASM, Arch: "tokyo"},
		{QASM: ghzQASM, Arch: "tokyo", Algo: "sabre"},
		{QASM: ghzQASM, Arch: "tokyo", Seed: 7},
		{QASM: ghzQASM, Arch: "melbourne"},
		{QASM: ghzQASM, Arch: "q5", Algo: "sabre", Seed: 3},
		{QASM: ghzQASM, Arch: "tokyo", Portfolio: &api.PortfolioSpec{}},
	}
	trials := 4
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		workers := 1 + rng.Intn(4)
		jobsSrv := newTestServer(t, Config{Workers: workers})
		syncSrv := newTestServer(t, Config{Workers: workers})
		n := 4 + rng.Intn(5)
		mix := make([]api.MapRequest, n)
		for i := range mix {
			mix[i] = variants[rng.Intn(len(variants))] // duplicates welcome
		}
		// Submit everything before polling anything, so small worker counts
		// actually queue jobs behind each other.
		ids := make([]string, n)
		for i := range mix {
			ids[i] = submitJob(t, jobsSrv, mix[i]).ID
		}
		for i, id := range ids {
			pollJob(t, jobsSrv, id, api.JobDone)
			w := do(t, jobsSrv, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
			if w.Code != http.StatusOK {
				t.Fatalf("trial %d workers %d: result %s: %d %s", trial, workers, id, w.Code, w.Body.String())
			}
			jobBody := w.Body.Bytes()
			sync := do(t, syncSrv, http.MethodPost, "/v1/map", mix[i])
			if sync.Code != http.StatusOK {
				t.Fatalf("trial %d: sync map: %d %s", trial, sync.Code, sync.Body.String())
			}
			if !bytes.Equal(jobBody, sync.Body.Bytes()) {
				t.Fatalf("trial %d workers %d req %d: job bytes differ from sync server\njob:  %s\nsync: %s",
					trial, workers, i, jobBody, sync.Body.Bytes())
			}
			// Same cache key: the sync path on the job server must serve the
			// job's stored result.
			repeat := do(t, jobsSrv, http.MethodPost, "/v1/map", mix[i])
			if got := repeat.Header().Get(api.HeaderCache); got != "hit" {
				t.Fatalf("trial %d req %d: sync repeat disposition %q, want hit", trial, i, got)
			}
			if !bytes.Equal(jobBody, repeat.Body.Bytes()) {
				t.Fatalf("trial %d req %d: cached sync bytes differ from job result", trial, i)
			}
		}
	}
}
