package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestWrongMethodsUniform405 sweeps every route with methods it does not
// serve and asserts the uniform contract: 405, an Allow header listing the
// methods that would work, and the versioned error envelope with code
// method_not_allowed.
func TestWrongMethodsUniform405(t *testing.T) {
	s := newTestServer(t, Config{})
	routes := []struct {
		path  string
		allow string
	}{
		{"/healthz", "GET"},
		{"/metrics", "GET"},
		{"/v1/map", "POST"},
		{"/v1/map/batch", "POST"},
		{"/v1/devices", "GET, POST"},
		{"/v1/devices/tokyo/calibration", "GET, POST, PUT"},
		{"/v1/stats", "GET"},
	}
	probes := []string{
		http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodDelete, http.MethodPatch, http.MethodHead,
	}
	for _, rt := range routes {
		allowed := map[string]bool{}
		for _, m := range splitAllow(rt.allow) {
			allowed[m] = true
		}
		for _, m := range probes {
			if allowed[m] {
				continue
			}
			w := do(t, s, m, rt.path, nil)
			if w.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status = %d, want 405", m, rt.path, w.Code)
				continue
			}
			if got := w.Header().Get("Allow"); got != rt.allow {
				t.Errorf("%s %s: Allow = %q, want %q", m, rt.path, got, rt.allow)
			}
			// HEAD responses legitimately carry no body; every other
			// method must get the envelope.
			if m == http.MethodHead {
				continue
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Errorf("%s %s: body %q is not an error envelope", m, rt.path, w.Body.String())
				continue
			}
			if env.Error.Code != "method_not_allowed" {
				t.Errorf("%s %s: code = %q, want method_not_allowed", m, rt.path, env.Error.Code)
			}
			if env.Error.RequestID == "" {
				t.Errorf("%s %s: envelope missing request_id", m, rt.path)
			}
		}
	}
}

func splitAllow(allow string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(allow); i++ {
		if i == len(allow) || allow[i] == ',' {
			m := allow[start:i]
			for len(m) > 0 && m[0] == ' ' {
				m = m[1:]
			}
			if m != "" {
				out = append(out, m)
			}
			start = i + 1
		}
	}
	return out
}
