package service

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func TestQuotaBucketRefills(t *testing.T) {
	q := newQuotas(10, 2) // 10 rps, burst 2
	now := time.Unix(0, 0)
	q.now = func() time.Time { return now }

	if ok, _ := q.allow("alice", 1); !ok {
		t.Fatal("first request should pass")
	}
	if ok, _ := q.allow("alice", 1); !ok {
		t.Fatal("second request (burst) should pass")
	}
	ok, retry := q.allow("alice", 1)
	if ok {
		t.Fatal("third request should exhaust the burst")
	}
	if retry < time.Second {
		t.Fatalf("retry = %v, want >= 1s", retry)
	}
	// 100ms refills one token at 10 rps.
	now = now.Add(100 * time.Millisecond)
	if ok, _ := q.allow("alice", 1); !ok {
		t.Fatal("refilled token should pass")
	}
	// Distinct clients have distinct buckets.
	if ok, _ := q.allow("bob", 1); !ok {
		t.Fatal("bob's fresh bucket should pass")
	}
}

func TestQuotaBatchCharge(t *testing.T) {
	q := newQuotas(1, 5)
	now := time.Unix(0, 0)
	q.now = func() time.Time { return now }
	if ok, _ := q.allow("c", 5); !ok {
		t.Fatal("batch of 5 fits the burst")
	}
	ok, retry := q.allow("c", 3)
	if ok {
		t.Fatal("empty bucket should reject")
	}
	if retry < 3*time.Second {
		t.Fatalf("retry = %v, want >= 3s for a 3-token deficit at 1 rps", retry)
	}
}

func TestQuotaDisabled(t *testing.T) {
	if q := newQuotas(0, 10); q != nil {
		t.Fatal("rps 0 should disable quotas")
	}
	var q *quotas
	if ok, _ := q.allow("anyone", 100); !ok {
		t.Fatal("nil quotas must always allow")
	}
}

func TestQuota429EndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QuotaRPS: 0.001, QuotaBurst: 2})
	req := MapRequest{QASM: ghzQASM, Arch: "tokyo"}

	hdr := map[string]string{"X-Codard-Client": "test-client"}
	for i := 0; i < 2; i++ {
		if w := doWithHeaders(t, s, http.MethodPost, "/v1/map", req, hdr); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := doWithHeaders(t, s, http.MethodPost, "/v1/map", req, hdr)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != "quota_exceeded" {
		t.Fatalf("envelope = %s, want code quota_exceeded", w.Body.String())
	}
	// Another client is unaffected: buckets are per X-Codard-Client.
	other := map[string]string{"X-Codard-Client": "other-client"}
	if w := doWithHeaders(t, s, http.MethodPost, "/v1/map", req, other); w.Code != http.StatusOK {
		t.Fatalf("other client: status %d, want 200", w.Code)
	}
	// The rejection is counted separately from queue-full backpressure.
	st := s.statsSnapshot()
	if st.QuotaRejected != 1 || st.Rejected != 0 {
		t.Fatalf("quota_rejected/rejected = %d/%d, want 1/0", st.QuotaRejected, st.Rejected)
	}
}

func TestQuotaBatchChargedUpFront(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QuotaRPS: 0.001, QuotaBurst: 2})
	batch := BatchRequest{Requests: []MapRequest{
		{QASM: ghzQASM, Arch: "tokyo"},
		{QASM: ghzQASM, Arch: "tokyo", Algo: "sabre"},
		{QASM: ghzQASM, Arch: "melbourne"},
	}}
	w := doWithHeaders(t, s, http.MethodPost, "/v1/map/batch", batch, map[string]string{"X-Codard-Client": "batcher"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("batch of 3 against burst 2: status = %d, want 429", w.Code)
	}
}
