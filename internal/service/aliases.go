package service

import "codar/api"

// The v1 wire types moved to package api (the versioned contract shared
// with package client and external consumers). These aliases keep the
// server-side names every existing embedder, test and benchmark uses —
// they are the same types, not copies.
type (
	MapRequest      = api.MapRequest
	PortfolioSpec   = api.PortfolioSpec
	MapResponse     = api.MapResponse
	PortfolioStats  = api.PortfolioStats
	CandidateReport = api.CandidateReport
	BatchRequest    = api.BatchRequest
	BatchItem       = api.BatchItem
	BatchResponse   = api.BatchResponse
	DeviceSpec      = api.DeviceSpec
	DurationsSpec   = api.DurationsSpec
	DeviceInfo      = api.DeviceInfo
	CalibrationInfo = api.CalibrationInfo
	ErrorBody       = api.ErrorBody
	ErrorEnvelope   = api.ErrorEnvelope
)
