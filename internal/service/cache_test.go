package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheUpdateDoesNotGrow(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A1"))
	c.Put("a", []byte("A2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 after re-put", c.Len())
	}
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("A2")) {
		t.Fatalf("get a = %q, want A2", v)
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache(4)
	c.Put("a", []byte("A"))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters = %d/%d, want 2/1", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must never hit")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestCacheEvictionUnderChurn(t *testing.T) {
	const capacity = 16
	c := NewCache(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > capacity {
			t.Fatalf("cache grew to %d entries, capacity %d", c.Len(), capacity)
		}
	}
	// Exactly the newest `capacity` keys survive.
	for i := 10*capacity - capacity; i < 10*capacity; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d missing", i)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest key survived beyond capacity")
	}
}
