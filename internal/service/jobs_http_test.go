package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"codar/api"
	"codar/internal/testutil"
)

// pollJob polls the status route until the job reaches state want.
func pollJob(t *testing.T, s *Server, id string, want string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st api.JobStatus
	for time.Now().Before(deadline) {
		w := do(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: %d %s", id, w.Code, w.Body.String())
		}
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State == want {
			return st
		}
		if stateTerminal(st.State) {
			t.Fatalf("job %s settled in %s, want %s (error: %+v)", id, st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
	return st
}

func stateTerminal(s string) bool {
	switch s {
	case api.JobDone, api.JobFailed, api.JobCanceled, api.JobExpired:
		return true
	}
	return false
}

// submitJob posts one map request to /v1/jobs and returns the 202 status.
func submitJob(t *testing.T, s *Server, req api.MapRequest) api.JobStatus {
	t.Helper()
	w := do(t, s, http.MethodPost, "/v1/jobs", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d %s", w.Code, w.Body.String())
	}
	var st api.JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location %q, want /v1/jobs/%s", loc, st.ID)
	}
	return st
}

func TestJobLifecycleMatchesSyncBytes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 2})

	req := api.MapRequest{QASM: ghzQASM, Arch: "tokyo"}
	st := submitJob(t, s, req)
	if st.State != api.JobQueued && st.State != api.JobRunning {
		t.Fatalf("initial state %s", st.State)
	}
	final := pollJob(t, s, st.ID, api.JobDone)
	if final.ResultURL != "/v1/jobs/"+st.ID+"/result" {
		t.Fatalf("result_url %q", final.ResultURL)
	}
	if final.Cache != "miss" {
		t.Fatalf("first job cache disposition %q, want miss", final.Cache)
	}

	w := do(t, s, http.MethodGet, final.ResultURL, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET result: %d %s", w.Code, w.Body.String())
	}
	jobBody := w.Body.String()
	if got := w.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("result cache header %q, want miss", got)
	}

	// The synchronous twin must be a cache hit with byte-identical body:
	// one pipeline, one store, one key.
	ws := do(t, s, http.MethodPost, "/v1/map", api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if ws.Code != http.StatusOK {
		t.Fatalf("POST /v1/map: %d %s", ws.Code, ws.Body.String())
	}
	if got := ws.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("sync twin disposition %q, want hit (same cache key)", got)
	}
	if ws.Body.String() != jobBody {
		t.Fatalf("sync body differs from job result body:\n%s\nvs\n%s", ws.Body.String(), jobBody)
	}

	// A repeated job for the same spec reports a hit.
	st2 := submitJob(t, s, req)
	final2 := pollJob(t, s, st2.ID, api.JobDone)
	if final2.Cache != "hit" {
		t.Fatalf("repeat job disposition %q, want hit", final2.Cache)
	}
}

func TestJobSubmitValidationFailsFast(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  interface{}
		code int
		ec   string
	}{
		{"missing qasm", api.MapRequest{Arch: "tokyo"}, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown device", api.MapRequest{QASM: ghzQASM, Arch: "nope"}, http.StatusNotFound, api.CodeUnknownDevice},
		{"bad algo", api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Algo: "zap"}, http.StatusBadRequest, api.CodeBadRequest},
		{"uncalibrated", api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Calibrated: true}, http.StatusBadRequest, api.CodeBadRequest},
		{"bad json", "{", http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		w := do(t, s, http.MethodPost, "/v1/jobs", tc.req)
		if w.Code != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.code, w.Body.String())
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s: decode envelope: %v", tc.name, err)
		}
		if env.Error.Code != tc.ec {
			t.Fatalf("%s: code %q, want %q", tc.name, env.Error.Code, tc.ec)
		}
	}
	// Bad QASM is only discovered at mapping time: the job is accepted and
	// fails, and the result replays the 400 bad_qasm envelope.
	st := submitJob(t, s, api.MapRequest{QASM: "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n", Arch: "tokyo"})
	final := pollJob(t, s, st.ID, api.JobFailed)
	if final.Error == nil || final.Error.Code != api.CodeBadQASM {
		t.Fatalf("failed job error %+v, want bad_qasm", final.Error)
	}
	w := do(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("failed job result status %d, want 400", w.Code)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != api.CodeBadQASM {
		t.Fatalf("failed job result envelope %s (err %v)", w.Body.String(), err)
	}
}

func TestJobErrorsAndSentinocodes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})

	w := do(t, s, http.MethodGet, "/v1/jobs/deadbeefdeadbeef", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", w.Code)
	}
	var env api.ErrorEnvelope
	json.Unmarshal(w.Body.Bytes(), &env)
	if env.Error.Code != api.CodeJobNotFound {
		t.Fatalf("unknown job code %q, want job_not_found", env.Error.Code)
	}

	w = do(t, s, http.MethodPut, "/v1/jobs", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs: %d", w.Code)
	}
	w = do(t, s, http.MethodGet, "/v1/jobs/", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET /v1/jobs/: %d", w.Code)
	}
}

func TestJobNotDoneAndCancel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	// Workers: 1 plus a slow first job keeps the second queued, so its
	// not-done and cancel paths are observable without racing completion.
	s := newTestServer(t, Config{Workers: 1})

	blocker := submitJob(t, s, api.MapRequest{
		QASM: strings.Replace(ghzQASM, "qreg q[5];", "qreg q[5];", 1),
		Arch: "sycamore", Portfolio: &api.PortfolioSpec{Seeds: []int64{1, 2, 3, 4}},
	})
	queued := submitJob(t, s, api.MapRequest{QASM: ghzQASM, Arch: "melbourne"})

	w := do(t, s, http.MethodGet, "/v1/jobs/"+queued.ID+"/result", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("result of queued job: %d, want 409", w.Code)
	}
	var env api.ErrorEnvelope
	json.Unmarshal(w.Body.Bytes(), &env)
	if env.Error.Code != api.CodeJobNotDone {
		t.Fatalf("queued result code %q, want job_not_done", env.Error.Code)
	}
	if w.Header().Get(api.HeaderRetryAfter) == "" {
		t.Fatal("409 job_not_done without Retry-After")
	}

	// DELETE the queued job: canceled without ever running.
	w = do(t, s, http.MethodDelete, "/v1/jobs/"+queued.ID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE queued job: %d %s", w.Code, w.Body.String())
	}
	var st api.JobStatus
	json.Unmarshal(w.Body.Bytes(), &st)
	if st.State != api.JobCanceled {
		t.Fatalf("canceled job state %s", st.State)
	}

	// Let the blocker finish so no job goroutine outlives the test.
	pollJob(t, s, blocker.ID, api.JobDone)
}

func TestJobCapacityRejects(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1, JobsCapacity: 2})

	// Two heavy jobs fill the store (one running, one queued)...
	heavy := api.MapRequest{QASM: ghzQASM, Arch: "sycamore", Portfolio: &api.PortfolioSpec{Seeds: []int64{1, 2, 3}}}
	a := submitJob(t, s, heavy)
	b := submitJob(t, s, api.MapRequest{QASM: ghzQASM, Arch: "tokyo", Portfolio: &api.PortfolioSpec{Seeds: []int64{1, 2, 3}}})
	// ...and the third answers 429 queue_full.
	w := do(t, s, http.MethodPost, "/v1/jobs", api.MapRequest{QASM: ghzQASM, Arch: "melbourne"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("submit beyond capacity: %d %s", w.Code, w.Body.String())
	}
	var env api.ErrorEnvelope
	json.Unmarshal(w.Body.Bytes(), &env)
	if env.Error.Code != api.CodeQueueFull {
		t.Fatalf("over-capacity code %q, want queue_full", env.Error.Code)
	}
	pollJob(t, s, a.ID, api.JobDone)
	pollJob(t, s, b.ID, api.JobDone)
}

func TestJobEventsStreamsToTerminal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, s, api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})

	// Stream over a real connection: SSE needs incremental reads.
	hs := httptest.NewServer(s)
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("decode event %q: %v", line, err)
		}
		if ev.ID != st.ID {
			t.Fatalf("event for job %s, want %s", ev.ID, st.ID)
		}
		states = append(states, ev.State)
	}
	if len(states) == 0 || states[len(states)-1] != api.JobDone {
		t.Fatalf("streamed states %v, want trailing done", states)
	}
	// Unknown job IDs 404 instead of opening a stream.
	wr := do(t, s, http.MethodGet, "/v1/jobs/ffffffffffffffff/events", nil)
	if wr.Code != http.StatusNotFound {
		t.Fatalf("events for unknown job: %d", wr.Code)
	}
}

func TestJobExpiryServes410(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1, JobsTTL: 50 * time.Millisecond})
	st := submitJob(t, s, api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	pollJob(t, s, st.ID, api.JobDone)
	time.Sleep(80 * time.Millisecond)
	w := do(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil)
	if w.Code != http.StatusGone {
		t.Fatalf("expired result: %d %s", w.Code, w.Body.String())
	}
	var env api.ErrorEnvelope
	json.Unmarshal(w.Body.Bytes(), &env)
	if env.Error.Code != api.CodeJobExpired {
		t.Fatalf("expired code %q, want job_expired", env.Error.Code)
	}
}

func TestJobStatsAndMetricsExposed(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, s, api.MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	pollJob(t, s, st.ID, api.JobDone)

	w := do(t, s, http.MethodGet, "/v1/stats", nil)
	var stats api.StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Jobs == nil {
		t.Fatal("stats missing jobs block")
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("jobs stats %+v, want submitted=1 done=1", stats.Jobs)
	}
	wm := do(t, s, http.MethodGet, "/metrics", nil)
	if !strings.Contains(wm.Body.String(), "codard_jobs_submitted_total 1") {
		t.Fatal("metrics missing codard_jobs_submitted_total")
	}

	// A draining server settles its jobs and closes the store.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Drain(ctx)
	w = do(t, s, http.MethodPost, "/v1/jobs", api.MapRequest{QASM: ghzQASM, Arch: "melbourne"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("submit after drain: %d", w.Code)
	}
}
