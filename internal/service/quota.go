package service

import (
	"math"
	"sync"
	"time"
)

// quotas is the per-client token-bucket rate limiter in front of the
// mapping endpoints. Clients identify themselves with the X-Codard-Client
// header; requests without one share a single anonymous bucket, so an
// unlabelled stampede cannot dodge the limiter by omitting the header.
// Exhaustion is the same 429 + Retry-After rejection shape as the
// admission queue, but with code "quota_exceeded" so clients can tell
// "server full" from "you specifically are over budget".
//
// Buckets refill continuously at rps tokens/second up to burst. The table
// is capped: once maxQuotaClients distinct names exist, unseen names fall
// back to the anonymous bucket rather than growing memory without bound.
const (
	anonClient      = ""
	maxQuotaClients = 1024
)

type quotas struct {
	rps   float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotas builds the limiter; rps <= 0 disables it (allow returns ok).
func newQuotas(rps, burst float64) *quotas {
	if rps <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &quotas{
		rps:     rps,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow takes n tokens from client's bucket. On refusal it returns the
// wait (rounded up to whole seconds, minimum 1) until the bucket will hold
// n tokens again, for the Retry-After header. A nil receiver always allows.
func (q *quotas) allow(client string, n int) (ok bool, retryAfter time.Duration) {
	if q == nil || n <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[client]
	if b == nil {
		if len(q.buckets) >= maxQuotaClients && client != anonClient {
			b = q.buckets[anonClient]
		}
		if b == nil {
			key := client
			if len(q.buckets) >= maxQuotaClients {
				key = anonClient
			}
			b = &bucket{tokens: q.burst, last: q.now()}
			q.buckets[key] = b
		}
	}
	now := q.now()
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rps)
	b.last = now
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	// A batch larger than the whole burst can never pass; report the full
	// refill time rather than a nonsensical negative.
	deficit := need - b.tokens
	if need > q.burst {
		deficit = q.burst
	}
	secs := math.Ceil(deficit / q.rps)
	if secs < 1 {
		secs = 1
	}
	return false, time.Duration(secs) * time.Second
}
