package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"codar/api"
	"codar/internal/qasm"
	"codar/internal/testutil"
	"codar/internal/workloads"
)

// streamQASM is a routing-heavy circuit big enough that the streaming
// mappers flush several chunks, with measures so the creg reconstruction
// in the stream header is exercised.
func streamQASM(t *testing.T, gates int, seed int64) string {
	t.Helper()
	src := qasm.Write(workloads.Random(16, gates, 45, seed))
	src = strings.Replace(src, "qreg q[16];\n", "qreg q[16];\ncreg c[4];\n", 1)
	return src + "measure q[3] -> c[2];\nmeasure q[0] -> c[0];\n"
}

// decodeStreamBody splits an NDJSON response body into its records and
// checks the framing invariants: exactly one header record first, chunks
// with contiguous seq numbers, one terminal record (result or error) last.
func decodeStreamBody(t *testing.T, body string) (hdr *api.StreamHeader, chunks []*api.StreamChunk, result *api.MapResponse, inband *api.ErrorBody) {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(body))
	n := 0
	for dec.More() {
		var rec api.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("record %d does not decode: %v", n, err)
		}
		if result != nil || inband != nil {
			t.Fatalf("record %d arrived after the terminal record", n)
		}
		switch rec.Type {
		case api.StreamTypeHeader:
			if n != 0 {
				t.Fatalf("header record at position %d, want 0", n)
			}
			hdr = rec.Header
		case api.StreamTypeChunk:
			if rec.Chunk == nil {
				t.Fatalf("record %d: chunk record without payload", n)
			}
			if rec.Chunk.Seq != len(chunks) {
				t.Fatalf("chunk seq %d at position %d, want %d", rec.Chunk.Seq, n, len(chunks))
			}
			if got := strings.Count(rec.Chunk.QASM, "\n"); got != rec.Chunk.Gates {
				t.Fatalf("chunk %d declares %d gates but carries %d lines", rec.Chunk.Seq, rec.Chunk.Gates, got)
			}
			chunks = append(chunks, rec.Chunk)
		case api.StreamTypeResult:
			result = rec.Result
		case api.StreamTypeError:
			inband = rec.Error
		default:
			t.Fatalf("record %d: unknown type %q", n, rec.Type)
		}
		n++
	}
	if hdr == nil {
		t.Fatal("stream has no header record")
	}
	if result == nil && inband == nil {
		t.Fatal("stream has no terminal record")
	}
	return hdr, chunks, result, inband
}

// concatStream reassembles a full mapped circuit from the stream frames.
func concatStream(hdr *api.StreamHeader, chunks []*api.StreamChunk) string {
	var sb strings.Builder
	sb.WriteString(hdr.QASMHeader)
	for _, ch := range chunks {
		sb.WriteString(ch.QASM)
	}
	return sb.String()
}

// TestMapStreamMatchesBatchBytes is the service-level differential pin: for
// both mappers, the concatenation of the stream header's qasm_header with
// every chunk's qasm is byte-identical to the mapped_qasm the batch
// endpoint returns for the same request — and the streamed response never
// touches the result store in either direction.
func TestMapStreamMatchesBatchBytes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	src := streamQASM(t, 6000, 11)
	for _, algo := range []string{"codar", "sabre"} {
		t.Run(algo, func(t *testing.T) {
			s := newTestServer(t, Config{Workers: 2})
			off := false
			req := MapRequest{QASM: src, Arch: "tokyo", Algo: algo, Seed: 3, Baseline: &off}

			w := do(t, s, http.MethodPost, "/v1/map?stream=1", req)
			if w.Code != http.StatusOK {
				t.Fatalf("stream status %d: %s", w.Code, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != api.StreamContentType {
				t.Fatalf("content type %q, want %q", ct, api.StreamContentType)
			}
			if got := w.Header().Get(cacheHeader); got != api.CacheBypass {
				t.Fatalf("cache header %q, want %q", got, api.CacheBypass)
			}
			hdr, chunks, result, inband := decodeStreamBody(t, w.Body.String())
			if inband != nil {
				t.Fatalf("stream failed in-band: %+v", inband)
			}
			if len(chunks) < 2 {
				t.Fatalf("only %d chunks for a %d-gate circuit; streaming degenerated to one flush", len(chunks), 6000)
			}
			if hdr.Algo != algo || hdr.Device != "ibm-q20-tokyo" || hdr.InputQubits != 16 {
				t.Fatalf("bad stream header: %+v", hdr)
			}
			if result.MappedQASM != "" {
				t.Fatal("stream result record carries mapped_qasm; the circuit must travel in chunks only")
			}

			// A streamed mapping plants nothing: the next batch request for
			// the same spec must recompute (miss), not hit a partial entry.
			if n := s.cache.Len(); n != 0 {
				t.Fatalf("streamed mapping planted %d cache entries", n)
			}
			bw := do(t, s, http.MethodPost, "/v1/map", req)
			if bw.Code != http.StatusOK {
				t.Fatalf("batch status %d: %s", bw.Code, bw.Body.String())
			}
			if got := bw.Header().Get(cacheHeader); got != "miss" {
				t.Fatalf("batch after stream cache header %q, want miss (stream must not write the store)", got)
			}
			var batch MapResponse
			if err := json.Unmarshal(bw.Body.Bytes(), &batch); err != nil {
				t.Fatalf("decode batch: %v", err)
			}
			if got := concatStream(hdr, chunks); got != batch.MappedQASM {
				t.Fatalf("stream concat differs from batch mapped_qasm (%d vs %d bytes)", len(got), len(batch.MappedQASM))
			}
			if result.OutputGates != batch.OutputGates || result.Swaps != batch.Swaps {
				t.Fatalf("stream summary gates/swaps %d/%d, batch %d/%d",
					result.OutputGates, result.Swaps, batch.OutputGates, batch.Swaps)
			}
			total := 0
			for _, ch := range chunks {
				total += ch.Gates
			}
			if total != result.OutputGates {
				t.Fatalf("chunks carry %d gates, summary says %d", total, result.OutputGates)
			}

			// A second stream still bypasses the now-warm cache: disposition
			// stays "bypass", never "hit".
			w2 := do(t, s, http.MethodPost, "/v1/map?stream=1", req)
			if got := w2.Header().Get(cacheHeader); got != api.CacheBypass {
				t.Fatalf("warm-cache stream disposition %q, want %q", got, api.CacheBypass)
			}
		})
	}
}

// TestMapStreamRejectsWholeCircuitModes pins the pre-commit error contract:
// requests that need the whole circuit in memory (portfolio, baseline) and
// ordinary validation failures answer the normal JSON envelope with normal
// statuses — never a half-open stream.
func TestMapStreamRejectsWholeCircuitModes(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	on := true
	cases := []struct {
		name string
		req  interface{}
		code int
	}{
		{"portfolio", MapRequest{QASM: ghzQASM, Arch: "tokyo", Portfolio: &api.PortfolioSpec{Seeds: []int64{1, 2}}}, http.StatusBadRequest},
		{"baseline", MapRequest{QASM: ghzQASM, Arch: "tokyo", Baseline: &on}, http.StatusBadRequest},
		{"bad qasm", MapRequest{QASM: "OPENQASM 2.0; junk", Arch: "tokyo"}, http.StatusBadRequest},
		{"unknown device", MapRequest{QASM: ghzQASM, Arch: "nonexistent"}, http.StatusNotFound},
		{"bad json", `{"qasm": `, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := do(t, s, http.MethodPost, "/v1/map?stream=1", tc.req)
		if w.Code != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct == api.StreamContentType {
			t.Fatalf("%s: rejected request answered as a stream", tc.name)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code == "" {
			t.Fatalf("%s: not an error envelope: %s", tc.name, w.Body.String())
		}
	}
}

// cancelOnFlush wraps a ResponseRecorder and fires a callback on the n-th
// Flush — the deterministic hook the mid-stream failure tests use to abort
// the request context after the stream has committed.
type cancelOnFlush struct {
	*httptest.ResponseRecorder
	n      int
	flush  int
	onSpot func()
}

func (c *cancelOnFlush) Flush() {
	c.ResponseRecorder.Flush()
	c.flush++
	if c.flush == c.n && c.onSpot != nil {
		c.onSpot()
	}
}

// TestMapStreamCancelMidStream: the request context firing after records
// are on the wire cannot unsend the 200 — the failure arrives as an
// in-band error record with code "canceled", the 499 is accounted in the
// stats, and nothing was planted in the store.
func TestMapStreamCancelMidStream(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Flush 1 is the header record, flush 2 the first chunk: cancel there,
	// with thousands of gates still unmapped behind it.
	w := &cancelOnFlush{ResponseRecorder: httptest.NewRecorder(), n: 2, onSpot: cancel}
	req := MapRequest{QASM: streamQASM(t, 20000, 7), Arch: "tokyo", Algo: "codar"}
	if serr := s.serveMapStream(ctx, w, &req); serr != nil {
		t.Fatalf("committed stream returned an envelope error: %v", serr.msg)
	}
	hdr, chunks, result, inband := decodeStreamBody(t, w.Body.String())
	if result != nil {
		t.Fatal("canceled stream still delivered a result record")
	}
	if inband == nil || inband.Code != api.CodeCanceled {
		t.Fatalf("in-band error = %+v, want code %q", inband, api.CodeCanceled)
	}
	if hdr == nil || len(chunks) == 0 {
		t.Fatal("cancellation fired before any chunk; the test lost its mid-stream timing hook")
	}
	if got := s.stats.canceled.Load(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("canceled stream planted %d cache entries", n)
	}
}

// TestMapStreamDeadlineMidStream: same shape for the per-request deadline —
// the stream ends with an in-band "deadline_exceeded" record and the 504
// counter moves.
func TestMapStreamDeadlineMidStream(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 1})
	// Generous enough that parse + initial layout + the first chunk land
	// well inside it; the flush hook then parks past it deterministically.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w := &cancelOnFlush{ResponseRecorder: httptest.NewRecorder(), n: 2, onSpot: func() {
		// Park past the deadline while mid-stream, so the engine's next
		// cancellation check classifies as deadline-exceeded.
		<-ctx.Done()
	}}
	req := MapRequest{QASM: streamQASM(t, 20000, 7), Arch: "tokyo", Algo: "sabre"}
	if serr := s.serveMapStream(ctx, w, &req); serr != nil {
		t.Fatalf("committed stream returned an envelope error: %v", serr.msg)
	}
	_, chunks, result, inband := decodeStreamBody(t, w.Body.String())
	if result != nil {
		t.Fatal("timed-out stream still delivered a result record")
	}
	if inband == nil || inband.Code != api.CodeDeadline {
		t.Fatalf("in-band error = %+v, want code %q", inband, api.CodeDeadline)
	}
	if len(chunks) == 0 {
		t.Fatal("deadline fired before any chunk; the test lost its mid-stream timing hook")
	}
	if got := s.stats.deadlines.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

// TestJobResultStreamReplay: a done job's result replays in the same NDJSON
// framing, the reassembled circuit is byte-identical to the stored
// mapped_qasm, and — unlike a live stream — the job's real cache
// disposition survives in the header.
func TestJobResultStreamReplay(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, Config{Workers: 2})
	off := false
	req := api.MapRequest{QASM: streamQASM(t, 6000, 5), Arch: "tokyo", Algo: "sabre", Baseline: &off}
	st := submitJob(t, s, req)
	pollJob(t, s, st.ID, api.JobDone)

	plain := do(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain result: %d %s", plain.Code, plain.Body.String())
	}
	var stored MapResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &stored); err != nil {
		t.Fatalf("decode stored result: %v", err)
	}

	w := do(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/result?stream=1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stream result: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != api.StreamContentType {
		t.Fatalf("content type %q, want %q", ct, api.StreamContentType)
	}
	if got := w.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("replay disposition %q, want the job's own %q", got, "miss")
	}
	hdr, chunks, result, inband := decodeStreamBody(t, w.Body.String())
	if inband != nil {
		t.Fatalf("replay failed in-band: %+v", inband)
	}
	if got := concatStream(hdr, chunks); got != stored.MappedQASM {
		t.Fatalf("replay concat differs from stored mapped_qasm (%d vs %d bytes)", len(got), len(stored.MappedQASM))
	}
	if result.MappedQASM != "" {
		t.Fatal("replay result record carries mapped_qasm")
	}
	if result.OutputGates != stored.OutputGates || result.Swaps != stored.Swaps || result.WeightedDepth != stored.WeightedDepth {
		t.Fatalf("replay summary %+v differs from stored %+v", result, stored)
	}
	for _, ch := range chunks {
		if ch.Gates > jobStreamChunkGates {
			t.Fatalf("replay chunk carries %d gates, cap is %d", ch.Gates, jobStreamChunkGates)
		}
	}

	// A repeat job is a cache hit, and its replay says so.
	st2 := submitJob(t, s, req)
	pollJob(t, s, st2.ID, api.JobDone)
	w2 := do(t, s, http.MethodGet, "/v1/jobs/"+st2.ID+"/result?stream=1", nil)
	if got := w2.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("repeat-job replay disposition %q, want hit", got)
	}

	// Non-done jobs answer the same envelope errors with or without stream=1.
	wq := do(t, s, http.MethodGet, "/v1/jobs/ffffffffffffffff/result?stream=1", nil)
	if wq.Code != http.StatusNotFound {
		t.Fatalf("unknown job streamed result: %d, want 404", wq.Code)
	}
}
