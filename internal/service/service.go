// Package service implements codard, the qubit-mapping HTTP service: a
// long-running JSON API over the qasm → circuit → core/sabre → schedule →
// writer pipeline. The wire contract (request/response bodies, error
// envelope, header names) lives in package api; this package is the
// serving machinery behind it:
//
//   - a device registry (builtin models plus uploaded coupling graphs),
//   - a sharded LRU result store keyed by (circuit hash, device,
//     algorithm, durations, seed) with singleflight collapse of concurrent
//     identical cold requests, hot-key pinning past eviction, and optional
//     warm-start persistence (internal/persist) so a restart serves its
//     hot circuits immediately,
//   - a bounded admission queue in front of the worker pool plus
//     per-client token-bucket quotas, so a traffic burst degrades to
//     bounded queueing and explicit 429s instead of unbounded goroutine
//     fan-out or invisible head-of-line blocking.
//
// Robustness contract (DESIGN.md §11): every mapping request runs under a
// context — the client disconnecting, the per-request deadline (server
// default, capped override via the X-Codard-Timeout header) or a draining
// server cancels the mapping mid-run through the pipeline's cancellation
// plumbing. Backpressure is explicit: at most Workers mappings execute,
// at most MaxQueue more wait (bounded by QueueWait), and everything beyond
// that is rejected with 429 + Retry-After. A panicking mapping job answers
// 500 with the process, the cache and the counters intact. Every error
// response is the versioned envelope {"error": {"code", "message",
// "request_id"}} (api.ErrorEnvelope); the request ID is assigned here and
// echoed in the X-Codard-Request-Id header.
//
// Endpoints:
//
//	POST /v1/map        map one OpenQASM circuit, return mapped QASM + metrics
//	POST /v1/map/batch  map several circuits through the worker pool
//	GET  /v1/devices    list builtin + uploaded devices
//	POST /v1/devices    upload a custom coupling graph
//	GET  /v1/stats      cache/store, queue and cancellation counters, latency
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition of the same counters
//
// See DESIGN.md §7 for the architecture and the cache-key rationale, and
// docs/API.md for the written contract.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"codar/api"
	"codar/internal/chaos"
	"codar/internal/experiments"
	"codar/internal/interrupt"
	"codar/internal/jobs"
	"codar/internal/persist"
)

// Config tunes a Server. The zero value selects the defaults.
type Config struct {
	// Workers bounds the number of mapping jobs executing concurrently
	// (requests beyond it queue, bounded by MaxQueue/QueueWait). <= 0
	// selects GOMAXPROCS.
	Workers int
	// CacheSize is the LRU result-cache capacity in entries.
	// 0 selects DefaultCacheSize; negative disables caching.
	CacheSize int
	// MaxBatch caps the number of circuits in one /v1/map/batch request.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request body size. 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxQueue bounds how many mapping jobs may wait for a worker slot on
	// top of the Workers executing ones; admission beyond Workers+MaxQueue
	// answers 429 with Retry-After immediately. 0 selects DefaultMaxQueue;
	// negative disables queueing (any busy worker pool rejects).
	MaxQueue int
	// QueueWait bounds how long an admitted job waits for a worker slot
	// before giving up with 429 — the queue-wait budget that keeps a
	// stuffed queue from turning into unbounded client latency. 0 selects
	// DefaultQueueWait; negative waits as long as the request context
	// allows.
	QueueWait time.Duration
	// RequestTimeout is the default per-request mapping deadline; the
	// mapping is canceled mid-run and answered 504 when it expires. 0
	// selects DefaultRequestTimeout; negative disables the default (client
	// disconnect and X-Codard-Timeout still cancel).
	RequestTimeout time.Duration
	// MaxTimeout caps the client-supplied X-Codard-Timeout header: larger
	// requests are silently clamped, so a client cannot hold a worker past
	// the operator's bound. 0 selects DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Shards is the result-store shard count, rounded to a power of two
	// and capped so tiny caches don't shatter (see StoreConfig.Shards).
	// 0 selects 16.
	Shards int
	// PinThreshold is the hit count that pins a hot cache entry past LRU
	// eviction. 0 selects 8.
	PinThreshold int
	// QuotaRPS enables per-client token-bucket admission: each
	// X-Codard-Client refills at QuotaRPS requests/second up to QuotaBurst.
	// <= 0 (the default) disables quotas.
	QuotaRPS float64
	// QuotaBurst is the per-client bucket depth; < 1 selects 1. Ignored
	// when QuotaRPS <= 0.
	QuotaBurst float64
	// JobsCapacity bounds resident async jobs (any state) in the /v1/jobs
	// store; submits beyond it answer 429 queue_full. 0 selects
	// jobs.DefaultCapacity.
	JobsCapacity int
	// JobsTTL bounds async job retention: terminal jobs older than it lose
	// their result (410 job_expired), and expired tombstones are deleted
	// after another TTL. 0 selects jobs.DefaultTTL.
	JobsTTL time.Duration
	// Persist, when non-nil, is the opened warm-start log: its entries are
	// replayed into the result store at construction and every cached
	// mapping streams back into it. The caller owns the log's lifecycle
	// (codard opens it before New and closes it after Drain).
	Persist *persist.Log
	// Chaos, when non-nil, injects faults into mapping jobs (slow mappers,
	// panics) — the fault-injection harness behind codard -chaos-slow /
	// -chaos-panic-every and the CI chaos-smoke job. nil in production.
	Chaos *chaos.Injector
	// ErrorLog receives panic stacks and drain warnings. nil selects the
	// log package default.
	ErrorLog *log.Logger
}

// Defaults for Config.
const (
	DefaultCacheSize      = 512
	DefaultMaxBatch       = 64
	DefaultMaxBodyBytes   = 16 << 20 // 30k-gate QASM circuits run to a few MB
	DefaultMaxQueue       = 64
	DefaultQueueWait      = 30 * time.Second
	DefaultRequestTimeout = 2 * time.Minute
	DefaultMaxTimeout     = 10 * time.Minute
)

// statusClientClosedRequest is the non-standard (nginx-convention) status
// for requests whose client went away before the mapping finished. It never
// reaches that client — it exists for the access log and the error counter.
const statusClientClosedRequest = 499

// timeoutHeader carries a client-requested per-request deadline as a Go
// duration string ("500ms", "30s"); it is clamped to Config.MaxTimeout.
const timeoutHeader = api.HeaderTimeout

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize == 0:
		return DefaultCacheSize
	case c.CacheSize < 0:
		return 0
	}
	return c.CacheSize
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

func (c Config) maxQueue() int {
	switch {
	case c.MaxQueue == 0:
		return DefaultMaxQueue
	case c.MaxQueue < 0:
		return 0
	}
	return c.MaxQueue
}

func (c Config) queueWait() time.Duration {
	switch {
	case c.QueueWait == 0:
		return DefaultQueueWait
	case c.QueueWait < 0:
		return 0
	}
	return c.QueueWait
}

func (c Config) requestTimeout() time.Duration {
	switch {
	case c.RequestTimeout == 0:
		return DefaultRequestTimeout
	case c.RequestTimeout < 0:
		return 0
	}
	return c.RequestTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout <= 0 {
		return DefaultMaxTimeout
	}
	return c.MaxTimeout
}

func (c Config) errorLog() *log.Logger {
	if c.ErrorLog != nil {
		return c.ErrorLog
	}
	return log.Default()
}

// Server is the codard HTTP handler set plus its shared state. It is safe
// for concurrent use; construct with New.
type Server struct {
	cfg      Config
	workers  int
	registry *Registry
	cache    *Store
	quotas   *quotas // nil when QuotaRPS <= 0
	stats    *stats
	jobs     *jobs.Store
	sem      chan struct{} // worker-pool slots; nil only before New
	mux      *http.ServeMux
	logger   *log.Logger

	// baseCtx parents every request context; baseCancel is the drain
	// hammer — firing it aborts every in-flight mapping at the pipeline's
	// cancellation cadence (Drain).
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	workers := experiments.DefaultWorkers(cfg.Workers, 1<<30)
	s := &Server{
		cfg:      cfg,
		workers:  workers,
		registry: NewRegistry(),
		cache: NewStore(StoreConfig{
			Capacity:     cfg.cacheSize(),
			Shards:       cfg.Shards,
			PinThreshold: cfg.PinThreshold,
		}),
		quotas: newQuotas(cfg.QuotaRPS, cfg.QuotaBurst),
		stats:  newStats(),
		sem:    make(chan struct{}, workers),
		mux:    http.NewServeMux(),
		logger: cfg.errorLog(),
	}
	if cfg.Persist != nil {
		// Replay warm-start entries before attaching the log, so the seed
		// pass neither moves the hit/miss counters nor echoes every loaded
		// record straight back into the file.
		cfg.Persist.Replay(s.cache.Seed)
		s.cache.SetPersist(cfg.Persist)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// The job store shares the worker pool with the synchronous path: every
	// job goroutine parks on the same semaphore inside acquireJob, so
	// bounding job goroutines at `workers` keeps the admitted gauge honest
	// without double-booking slots. BaseCtx is the drain hammer — Drain's
	// hard cancel aborts running jobs through the same context plumbing as
	// in-flight synchronous mappings.
	s.jobs = jobs.NewStore(jobs.Config{
		Capacity: cfg.JobsCapacity,
		TTL:      cfg.JobsTTL,
		Workers:  workers,
		BaseCtx:  s.baseCtx,
	})
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/map/batch", s.handleMapBatch)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/devices", s.handleDevices)
	s.mux.HandleFunc("/v1/devices/", s.handleDeviceCalibration)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Registry exposes the device registry (used by tests and embedders to
// pre-register devices before serving).
func (s *Server) Registry() *Registry { return s.registry }

// ServeHTTP implements http.Handler. It is the request-ID middleware —
// every request gets a fresh ID, echoed in the X-Codard-Request-Id
// response header and in error envelopes, so client-side reports join the
// server log — and the panic boundary: a panicking handler (chaos-injected
// or real) answers 500 with the stack logged and the panics counter
// bumped, instead of tearing down the connection and leaving the client to
// diagnose an EOF.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := newRequestID()
	w.Header().Set(api.HeaderRequestID, reqID)
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panics.Inc()
			s.logger.Printf("codard: panic serving %s %s (request %s): %v\n%s", r.Method, r.URL.Path, reqID, rec, debug.Stack())
			s.writeError(w, errInternal("internal error"))
		}
	}()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	s.mux.ServeHTTP(w, r)
}

// newRequestID returns a 16-hex-char random request ID. On the (never
// observed) chance the system entropy pool fails, a constant marker is
// still a valid ID — requests must not fail over log correlation.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestCtx derives the mapping context for one request: the client's
// context (disconnect aborts the mapping), bounded by the per-request
// deadline — the server default, or the X-Codard-Timeout header clamped to
// Config.MaxTimeout — and parented on the server's drain context. The
// returned cancel must be called when the request finishes.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, *svcError) {
	d := s.cfg.requestTimeout()
	if h := r.Header.Get(timeoutHeader); h != "" {
		parsed, err := time.ParseDuration(h)
		if err != nil || parsed <= 0 {
			return nil, nil, errBadRequest("bad %s %q: want a positive Go duration like 500ms or 30s", timeoutHeader, h)
		}
		if max := s.cfg.maxTimeout(); parsed > max {
			parsed = max
		}
		d = parsed
	}
	ctx := r.Context()
	var cancel context.CancelFunc
	if d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	// A draining server cancels in-flight requests through its own context;
	// AfterFunc bridges it into the per-request one without a goroutine
	// lingering past the request.
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

// acquire admits a mapping job and blocks until a worker-pool slot is free;
// the returned release func must be called when the job finishes. Admission
// is bounded: beyond workers+MaxQueue concurrently admitted jobs, or after
// QueueWait in the queue, the job is rejected with 429 + Retry-After. The
// job's context cancels the wait (client disconnect, deadline, drain). The
// in-flight gauge brackets slot ownership, so /v1/stats reports executing
// jobs; queued ones are admitted - in-flight.
func (s *Server) acquire(ctx context.Context) (func(), *svcError) {
	if s.stats.admitted.Add(1) > int64(s.workers+s.cfg.maxQueue()) {
		s.stats.admitted.Add(-1)
		return nil, errBusy("mapping queue full (%d executing, %d queued)", s.workers, s.cfg.maxQueue())
	}
	var waitC <-chan time.Time
	if qw := s.cfg.queueWait(); qw > 0 {
		timer := time.NewTimer(qw)
		defer timer.Stop()
		waitC = timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.sem <- struct{}{}:
	case <-done:
		s.stats.admitted.Add(-1)
		return nil, ctxSvcError(ctx)
	case <-waitC:
		s.stats.admitted.Add(-1)
		return nil, errBusy("no worker slot within the %v queue-wait budget", s.cfg.queueWait())
	}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		s.stats.admitted.Add(-1)
	}, nil
}

// acquireJob is the async path's admission: like acquire it blocks for a
// worker-pool slot and brackets the in-flight gauge, but it skips the
// MaxQueue bound and the QueueWait budget — an async job already holds a
// seat in the bounded job store (429 happened at Submit when the store was
// full), and its wait in line IS the product, reported as queue position.
// Only the job's context (cancel, TTL-independent deadline, drain) aborts
// the wait. Job-goroutine fan-out is capped at `workers` by the store, so
// the admitted gauge grows by at most workers on top of the sync bound.
func (s *Server) acquireJob(ctx context.Context) (func(), *svcError) {
	s.stats.admitted.Add(1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.sem <- struct{}{}:
	case <-done:
		s.stats.admitted.Add(-1)
		return nil, ctxSvcError(ctx)
	}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		s.stats.admitted.Add(-1)
	}, nil
}

// Drain waits for every admitted mapping job to finish. When ctx expires
// first, it fires the server's base context — hard-canceling the in-flight
// mappings through the pipeline's cancellation plumbing — waits (bounded)
// for them to abort, and reports true. New requests admitted during a drain
// are treated like any others; the caller is expected to have stopped the
// listener (http.Server.Shutdown) first.
func (s *Server) Drain(ctx context.Context) (hardCanceled bool) {
	// Whatever way the drain ends, close the job store: queued jobs that
	// never started settle as canceled and running job goroutines are waited
	// for, so the process never exits underneath one.
	defer s.jobs.Close()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.stats.admitted.Load() > 0 {
		select {
		case <-done:
			s.baseCancel()
			// In-flight mappings abort at their amortized cancellation
			// cadence; give them a bounded window to unwind before the
			// process exits underneath them.
			deadline := time.Now().Add(5 * time.Second)
			for s.stats.admitted.Load() > 0 && time.Now().Before(deadline) {
				<-tick.C
			}
			if n := s.stats.admitted.Load(); n > 0 {
				s.logger.Printf("codard: drain: %d mapping job(s) still running after hard cancel", n)
			}
			return true
		case <-tick.C:
		}
	}
	return false
}

// svcError is an error with an HTTP status and a machine-readable envelope
// code, so the pipeline can signal 400 vs 404 vs 429 — and bad_qasm vs
// queue_full vs quota_exceeded — without the handlers re-classifying
// message strings. retryAfter > 0 adds a Retry-After header (429
// rejections); allow, when set, adds the Allow header (405s).
type svcError struct {
	status     int
	code       string
	msg        string
	retryAfter int    // seconds
	allow      string // Allow header value for 405s
}

func (e *svcError) Error() string { return e.msg }

// envelopeCode returns the machine code, defaulting by status for errors
// built without one (belt and braces; every builder sets a code).
func (e *svcError) envelopeCode() string {
	if e.code != "" {
		return e.code
	}
	switch e.status {
	case http.StatusNotFound:
		return api.CodeNotFound
	case http.StatusInternalServerError:
		return api.CodeInternal
	}
	return api.CodeBadRequest
}

func errBadRequest(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errBadQASM marks a circuit that fails to parse or does not fit its
// target device — the caller's circuit, not the caller's JSON.
func errBadQASM(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusBadRequest, code: api.CodeBadQASM, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusNotFound, code: api.CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

// errUnknownDevice is the 404 for an Arch name nothing answers to —
// distinct from generic not_found so clients can prompt for a device list.
func errUnknownDevice(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusNotFound, code: api.CodeUnknownDevice, msg: fmt.Sprintf(format, args...)}
}

func errConflict(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusConflict, code: api.CodeConflict, msg: fmt.Sprintf(format, args...)}
}

func errInternal(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusInternalServerError, code: api.CodeInternal, msg: fmt.Sprintf(format, args...)}
}

// errMethodNotAllowed is the uniform wrong-method rejection: 405 with the
// Allow header listing what the route accepts.
func errMethodNotAllowed(allow, route string) *svcError {
	return &svcError{
		status: http.StatusMethodNotAllowed,
		code:   api.CodeMethodNotAllowed,
		msg:    fmt.Sprintf("%s only accepts %s", route, allow),
		allow:  allow,
	}
}

// errBusy is the backpressure rejection: 429 with a Retry-After hint.
func errBusy(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusTooManyRequests, code: api.CodeQueueFull, msg: fmt.Sprintf(format, args...), retryAfter: 1}
}

// errQuota is the per-client rate-limit rejection: same 429 + Retry-After
// shape as errBusy but with its own code, so "the server is full" and "you
// specifically are over budget" are distinguishable by machine.
func errQuota(client string, retryAfter int) *svcError {
	who := "anonymous clients"
	if client != "" {
		who = fmt.Sprintf("client %q", client)
	}
	return &svcError{
		status:     http.StatusTooManyRequests,
		code:       api.CodeQuotaExceeded,
		msg:        fmt.Sprintf("request quota for %s exhausted", who),
		retryAfter: retryAfter,
	}
}

// ctxSvcError classifies a fired request context: an exceeded deadline is
// 504 (the server gave up on the mapping), anything else means the client
// went away (499, log/counter only).
func ctxSvcError(ctx context.Context) *svcError {
	if errors.Is(interrupt.Classify(ctx), interrupt.ErrDeadline) {
		return &svcError{status: http.StatusGatewayTimeout, code: api.CodeDeadline, msg: "mapping deadline exceeded"}
	}
	return &svcError{status: statusClientClosedRequest, code: api.CodeCanceled, msg: "client closed request"}
}

// mapSvcError classifies a mapping-stage failure: cancellation surfacing
// through the pipeline keeps its transport meaning (504/499); everything
// else is the caller's bad input (400).
func mapSvcError(stage string, err error) *svcError {
	switch {
	case errors.Is(err, interrupt.ErrDeadline):
		return &svcError{status: http.StatusGatewayTimeout, code: api.CodeDeadline, msg: fmt.Sprintf("%s: mapping deadline exceeded", stage)}
	case errors.Is(err, interrupt.ErrCanceled):
		return &svcError{status: statusClientClosedRequest, code: api.CodeCanceled, msg: fmt.Sprintf("%s: mapping canceled", stage)}
	}
	return errBadRequest("%s: %v", stage, err)
}

// decodeJSON decodes a request body into v, mapping the MaxBytesReader
// limit to 413 (the client sent too much, not malformed JSON) and every
// other decode failure to 400.
func decodeJSON(r *http.Request, v interface{}) *svcError {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &svcError{
				status: http.StatusRequestEntityTooLarge,
				code:   api.CodePayloadTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			}
		}
		return errBadRequest("bad request body: %v", err)
	}
	return nil
}

// writeJSON marshals v with a trailing newline (curl-friendly) and writes
// it with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failure"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError emits the versioned error envelope — carrying the machine
// code and the request ID assigned in ServeHTTP — sets the error's headers
// (Retry-After on rejections, Allow on 405s) and bumps the outcome
// counters. 5xx errors are logged with the request ID so the envelope a
// client quotes finds its server-side context.
func (s *Server) writeError(w http.ResponseWriter, e *svcError) {
	s.stats.countError(e.status, e.code)
	if e.retryAfter > 0 {
		w.Header().Set(api.HeaderRetryAfter, strconv.Itoa(e.retryAfter))
	}
	if e.allow != "" {
		w.Header().Set("Allow", e.allow)
	}
	reqID := w.Header().Get(api.HeaderRequestID)
	if e.status >= http.StatusInternalServerError && e.status != http.StatusGatewayTimeout {
		s.logger.Printf("codard: request %s failed: %d %s: %s", reqID, e.status, e.envelopeCode(), e.msg)
	}
	writeJSON(w, e.status, api.ErrorEnvelope{Error: api.ErrorBody{
		Code:      e.envelopeCode(),
		Message:   e.msg,
		RequestID: reqID,
	}})
}

// handleHealthz implements the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, errMethodNotAllowed(http.MethodGet, "/healthz"))
		return
	}
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.stats.start).Seconds(),
	})
}

// StatsResponse is the GET /v1/stats body (the wire shape lives in
// package api).
type StatsResponse = api.StatsResponse

// statsSnapshot assembles the full counter view shared by /v1/stats and
// /metrics.
func (s *Server) statsSnapshot() StatsResponse {
	hits, misses := s.cache.Counters()
	inFlight := s.stats.inFlight.Load()
	queued := s.stats.admitted.Load() - inFlight
	if queued < 0 {
		queued = 0
	}
	shards := s.cache.ShardStats()
	apiShards := make([]api.ShardStats, len(shards))
	var evictions uint64
	pinned := 0
	for i, sh := range shards {
		apiShards[i] = api.ShardStats{
			Entries:   sh.Entries,
			Pinned:    sh.Pinned,
			Hits:      sh.Hits,
			Misses:    sh.Misses,
			Evictions: sh.Evictions,
		}
		evictions += sh.Evictions
		pinned += sh.Pinned
	}
	resp := StatsResponse{
		Requests:          s.stats.requests.Load(),
		Errors:            s.stats.errors.Load(),
		InFlight:          inFlight,
		QueueDepth:        queued,
		QueueCapacity:     s.cfg.maxQueue(),
		Workers:           s.workers,
		Canceled:          s.stats.canceled.Load(),
		DeadlineExceeded:  s.stats.deadlines.Load(),
		Rejected:          s.stats.rejected.Load(),
		QuotaRejected:     s.stats.quotaRejected.Load(),
		Panics:            s.stats.panics.Load(),
		Mappings:          s.stats.mappings.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheSize:         s.cache.Len(),
		CacheCapacity:     s.cache.Capacity(),
		CacheEvictions:    evictions,
		CachePinned:       pinned,
		CacheShards:       s.cache.Shards(),
		Collapsed:         s.stats.collapsed.Load(),
		Handoffs:          s.stats.handoffs.Load(),
		Shards:            apiShards,
		CustomDevices:     s.registry.CustomCount(),
		CalibratedDevices: s.registry.CalibrationCount(),
		UptimeSeconds:     time.Since(s.stats.start).Seconds(),
		Latency:           s.stats.latencies(),
	}
	if total := hits + misses; total > 0 {
		resp.CacheHitRate = float64(hits) / float64(total)
	}
	jst := s.jobs.Stats()
	resp.Jobs = &api.JobsStats{
		Submitted: jst.Submitted,
		Done:      jst.Done,
		Failed:    jst.Failed,
		Canceled:  jst.Canceled,
		Expired:   jst.Expired,
		Queued:    jst.Queued,
		Running:   jst.Running,
		Resident:  jst.Resident,
		Capacity:  jst.Capacity,
	}
	if log := s.cache.Persist(); log != nil {
		pst := log.Stats()
		resp.Persist = &api.PersistStats{
			Path:     pst.Path,
			Loaded:   pst.Loaded,
			Appended: pst.Appended,
			Dropped:  pst.Dropped,
		}
	}
	return resp
}

// handleStats reports serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, errMethodNotAllowed(http.MethodGet, "/v1/stats"))
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}
