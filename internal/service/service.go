// Package service implements codard, the qubit-mapping HTTP service: a
// long-running JSON API over the qasm → circuit → core/sabre → schedule →
// writer pipeline. The service adds three pieces the batch CLIs lack:
//
//   - a device registry (builtin models plus uploaded coupling graphs),
//   - an LRU result cache keyed by (circuit hash, device, algorithm,
//     durations, seed) so repeated circuits skip remapping entirely, and
//   - a bounded worker pool (the experiments.RunBatch pattern) so a traffic
//     burst degrades to queueing instead of unbounded goroutine fan-out.
//
// Endpoints:
//
//	POST /v1/map        map one OpenQASM circuit, return mapped QASM + metrics
//	POST /v1/map/batch  map several circuits through the worker pool
//	GET  /v1/devices    list builtin + uploaded devices
//	POST /v1/devices    upload a custom coupling graph
//	GET  /v1/stats      cache hit rate, in-flight gauge, latency percentiles
//	GET  /healthz       liveness probe
//
// See DESIGN.md §7 for the architecture and the cache-key rationale.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"codar/internal/experiments"
)

// Config tunes a Server. The zero value selects the defaults.
type Config struct {
	// Workers bounds the number of mapping jobs executing concurrently
	// (requests beyond it queue on the pool). <= 0 selects GOMAXPROCS.
	Workers int
	// CacheSize is the LRU result-cache capacity in entries.
	// 0 selects DefaultCacheSize; negative disables caching.
	CacheSize int
	// MaxBatch caps the number of circuits in one /v1/map/batch request.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request body size. 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Defaults for Config.
const (
	DefaultCacheSize    = 512
	DefaultMaxBatch     = 64
	DefaultMaxBodyBytes = 16 << 20 // 30k-gate QASM circuits run to a few MB
)

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize == 0:
		return DefaultCacheSize
	case c.CacheSize < 0:
		return 0
	}
	return c.CacheSize
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

// Server is the codard HTTP handler set plus its shared state. It is safe
// for concurrent use; construct with New.
type Server struct {
	cfg      Config
	workers  int
	registry *Registry
	cache    *Cache
	stats    *stats
	sem      chan struct{} // worker-pool slots; nil only before New
	mux      *http.ServeMux
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	workers := experiments.DefaultWorkers(cfg.Workers, 1<<30)
	s := &Server{
		cfg:      cfg,
		workers:  workers,
		registry: NewRegistry(),
		cache:    NewCache(cfg.cacheSize()),
		stats:    newStats(),
		sem:      make(chan struct{}, workers),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/map/batch", s.handleMapBatch)
	s.mux.HandleFunc("/v1/devices", s.handleDevices)
	s.mux.HandleFunc("/v1/devices/", s.handleDeviceCalibration)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Registry exposes the device registry (used by tests and embedders to
// pre-register devices before serving).
func (s *Server) Registry() *Registry { return s.registry }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	s.mux.ServeHTTP(w, r)
}

// acquire blocks until a worker-pool slot is free; the returned func
// releases it. The in-flight gauge brackets slot ownership, so /v1/stats
// reports executing jobs, not queued ones.
func (s *Server) acquire() func() {
	s.sem <- struct{}{}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
	}
}

// svcError is an error with an HTTP status, so the pipeline can signal
// 400 vs 404 vs 409 without the handlers re-classifying message strings.
type svcError struct {
	status int
	msg    string
}

func (e *svcError) Error() string { return e.msg }

func errBadRequest(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func errConflict(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusConflict, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON decodes a request body into v, mapping the MaxBytesReader
// limit to 413 (the client sent too much, not malformed JSON) and every
// other decode failure to 400.
func decodeJSON(r *http.Request, v interface{}) *svcError {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &svcError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			}
		}
		return errBadRequest("bad request body: %v", err)
	}
	return nil
}

// writeJSON marshals v with a trailing newline (curl-friendly) and writes
// it with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError emits the uniform error body and bumps the error counter.
func (s *Server) writeError(w http.ResponseWriter, e *svcError) {
	s.stats.errors.Add(1)
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// handleHealthz implements the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "healthz is GET-only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": time.Since(s.stats.start).Seconds(),
	})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Requests          uint64         `json:"requests"`
	Errors            uint64         `json:"errors"`
	InFlight          int64          `json:"in_flight"`
	Workers           int            `json:"workers"`
	CacheHits         uint64         `json:"cache_hits"`
	CacheMisses       uint64         `json:"cache_misses"`
	CacheHitRate      float64        `json:"cache_hit_rate"`
	CacheSize         int            `json:"cache_size"`
	CacheCapacity     int            `json:"cache_capacity"`
	CustomDevices     int            `json:"custom_devices"`
	CalibratedDevices int            `json:"calibrated_devices"`
	UptimeSeconds     float64        `json:"uptime_seconds"`
	Latency           LatencySummary `json:"latency"`
}

// handleStats reports serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "stats is GET-only"})
		return
	}
	hits, misses := s.cache.Counters()
	resp := StatsResponse{
		Requests:          s.stats.requests.Load(),
		Errors:            s.stats.errors.Load(),
		InFlight:          s.stats.inFlight.Load(),
		Workers:           s.workers,
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheSize:         s.cache.Len(),
		CacheCapacity:     s.cache.Capacity(),
		CustomDevices:     s.registry.CustomCount(),
		CalibratedDevices: s.registry.CalibrationCount(),
		UptimeSeconds:     time.Since(s.stats.start).Seconds(),
		Latency:           s.stats.latencies(),
	}
	if total := hits + misses; total > 0 {
		resp.CacheHitRate = float64(hits) / float64(total)
	}
	writeJSON(w, http.StatusOK, resp)
}
