// Package service implements codard, the qubit-mapping HTTP service: a
// long-running JSON API over the qasm → circuit → core/sabre → schedule →
// writer pipeline. The service adds three pieces the batch CLIs lack:
//
//   - a device registry (builtin models plus uploaded coupling graphs),
//   - an LRU result cache keyed by (circuit hash, device, algorithm,
//     durations, seed) so repeated circuits skip remapping entirely, and
//   - a bounded admission queue in front of the worker pool, so a traffic
//     burst degrades to bounded queueing and explicit 429s instead of
//     unbounded goroutine fan-out or invisible head-of-line blocking.
//
// Robustness contract (DESIGN.md §11): every mapping request runs under a
// context — the client disconnecting, the per-request deadline (server
// default, capped override via the X-Codard-Timeout header) or a draining
// server cancels the mapping mid-run through the pipeline's cancellation
// plumbing. Backpressure is explicit: at most Workers mappings execute,
// at most MaxQueue more wait (bounded by QueueWait), and everything beyond
// that is rejected with 429 + Retry-After. A panicking mapping job answers
// 500 with the process, the cache and the counters intact.
//
// Endpoints:
//
//	POST /v1/map        map one OpenQASM circuit, return mapped QASM + metrics
//	POST /v1/map/batch  map several circuits through the worker pool
//	GET  /v1/devices    list builtin + uploaded devices
//	POST /v1/devices    upload a custom coupling graph
//	GET  /v1/stats      cache hit rate, queue/cancellation counters, latency
//	GET  /healthz       liveness probe
//
// See DESIGN.md §7 for the architecture and the cache-key rationale.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"codar/internal/chaos"
	"codar/internal/experiments"
	"codar/internal/interrupt"
)

// Config tunes a Server. The zero value selects the defaults.
type Config struct {
	// Workers bounds the number of mapping jobs executing concurrently
	// (requests beyond it queue, bounded by MaxQueue/QueueWait). <= 0
	// selects GOMAXPROCS.
	Workers int
	// CacheSize is the LRU result-cache capacity in entries.
	// 0 selects DefaultCacheSize; negative disables caching.
	CacheSize int
	// MaxBatch caps the number of circuits in one /v1/map/batch request.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request body size. 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxQueue bounds how many mapping jobs may wait for a worker slot on
	// top of the Workers executing ones; admission beyond Workers+MaxQueue
	// answers 429 with Retry-After immediately. 0 selects DefaultMaxQueue;
	// negative disables queueing (any busy worker pool rejects).
	MaxQueue int
	// QueueWait bounds how long an admitted job waits for a worker slot
	// before giving up with 429 — the queue-wait budget that keeps a
	// stuffed queue from turning into unbounded client latency. 0 selects
	// DefaultQueueWait; negative waits as long as the request context
	// allows.
	QueueWait time.Duration
	// RequestTimeout is the default per-request mapping deadline; the
	// mapping is canceled mid-run and answered 504 when it expires. 0
	// selects DefaultRequestTimeout; negative disables the default (client
	// disconnect and X-Codard-Timeout still cancel).
	RequestTimeout time.Duration
	// MaxTimeout caps the client-supplied X-Codard-Timeout header: larger
	// requests are silently clamped, so a client cannot hold a worker past
	// the operator's bound. 0 selects DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Chaos, when non-nil, injects faults into mapping jobs (slow mappers,
	// panics) — the fault-injection harness behind codard -chaos-slow /
	// -chaos-panic-every and the CI chaos-smoke job. nil in production.
	Chaos *chaos.Injector
	// ErrorLog receives panic stacks and drain warnings. nil selects the
	// log package default.
	ErrorLog *log.Logger
}

// Defaults for Config.
const (
	DefaultCacheSize      = 512
	DefaultMaxBatch       = 64
	DefaultMaxBodyBytes   = 16 << 20 // 30k-gate QASM circuits run to a few MB
	DefaultMaxQueue       = 64
	DefaultQueueWait      = 30 * time.Second
	DefaultRequestTimeout = 2 * time.Minute
	DefaultMaxTimeout     = 10 * time.Minute
)

// statusClientClosedRequest is the non-standard (nginx-convention) status
// for requests whose client went away before the mapping finished. It never
// reaches that client — it exists for the access log and the error counter.
const statusClientClosedRequest = 499

// timeoutHeader carries a client-requested per-request deadline as a Go
// duration string ("500ms", "30s"); it is clamped to Config.MaxTimeout.
const timeoutHeader = "X-Codard-Timeout"

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize == 0:
		return DefaultCacheSize
	case c.CacheSize < 0:
		return 0
	}
	return c.CacheSize
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

func (c Config) maxQueue() int {
	switch {
	case c.MaxQueue == 0:
		return DefaultMaxQueue
	case c.MaxQueue < 0:
		return 0
	}
	return c.MaxQueue
}

func (c Config) queueWait() time.Duration {
	switch {
	case c.QueueWait == 0:
		return DefaultQueueWait
	case c.QueueWait < 0:
		return 0
	}
	return c.QueueWait
}

func (c Config) requestTimeout() time.Duration {
	switch {
	case c.RequestTimeout == 0:
		return DefaultRequestTimeout
	case c.RequestTimeout < 0:
		return 0
	}
	return c.RequestTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout <= 0 {
		return DefaultMaxTimeout
	}
	return c.MaxTimeout
}

func (c Config) errorLog() *log.Logger {
	if c.ErrorLog != nil {
		return c.ErrorLog
	}
	return log.Default()
}

// Server is the codard HTTP handler set plus its shared state. It is safe
// for concurrent use; construct with New.
type Server struct {
	cfg      Config
	workers  int
	registry *Registry
	cache    *Cache
	stats    *stats
	sem      chan struct{} // worker-pool slots; nil only before New
	mux      *http.ServeMux
	logger   *log.Logger

	// baseCtx parents every request context; baseCancel is the drain
	// hammer — firing it aborts every in-flight mapping at the pipeline's
	// cancellation cadence (Drain).
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	workers := experiments.DefaultWorkers(cfg.Workers, 1<<30)
	s := &Server{
		cfg:      cfg,
		workers:  workers,
		registry: NewRegistry(),
		cache:    NewCache(cfg.cacheSize()),
		stats:    newStats(),
		sem:      make(chan struct{}, workers),
		mux:      http.NewServeMux(),
		logger:   cfg.errorLog(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/map", s.handleMap)
	s.mux.HandleFunc("/v1/map/batch", s.handleMapBatch)
	s.mux.HandleFunc("/v1/devices", s.handleDevices)
	s.mux.HandleFunc("/v1/devices/", s.handleDeviceCalibration)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Registry exposes the device registry (used by tests and embedders to
// pre-register devices before serving).
func (s *Server) Registry() *Registry { return s.registry }

// ServeHTTP implements http.Handler. It is also the panic boundary: a
// panicking handler (chaos-injected or real) answers 500 with the stack
// logged and the panics counter bumped, instead of tearing down the
// connection and leaving the client to diagnose an EOF.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.stats.panics.Inc()
			s.logger.Printf("codard: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			s.writeError(w, &svcError{status: http.StatusInternalServerError, msg: "internal error"})
		}
	}()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	s.mux.ServeHTTP(w, r)
}

// requestCtx derives the mapping context for one request: the client's
// context (disconnect aborts the mapping), bounded by the per-request
// deadline — the server default, or the X-Codard-Timeout header clamped to
// Config.MaxTimeout — and parented on the server's drain context. The
// returned cancel must be called when the request finishes.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, *svcError) {
	d := s.cfg.requestTimeout()
	if h := r.Header.Get(timeoutHeader); h != "" {
		parsed, err := time.ParseDuration(h)
		if err != nil || parsed <= 0 {
			return nil, nil, errBadRequest("bad %s %q: want a positive Go duration like 500ms or 30s", timeoutHeader, h)
		}
		if max := s.cfg.maxTimeout(); parsed > max {
			parsed = max
		}
		d = parsed
	}
	ctx := r.Context()
	var cancel context.CancelFunc
	if d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	// A draining server cancels in-flight requests through its own context;
	// AfterFunc bridges it into the per-request one without a goroutine
	// lingering past the request.
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }, nil
}

// acquire admits a mapping job and blocks until a worker-pool slot is free;
// the returned release func must be called when the job finishes. Admission
// is bounded: beyond workers+MaxQueue concurrently admitted jobs, or after
// QueueWait in the queue, the job is rejected with 429 + Retry-After. The
// job's context cancels the wait (client disconnect, deadline, drain). The
// in-flight gauge brackets slot ownership, so /v1/stats reports executing
// jobs; queued ones are admitted - in-flight.
func (s *Server) acquire(ctx context.Context) (func(), *svcError) {
	if s.stats.admitted.Add(1) > int64(s.workers+s.cfg.maxQueue()) {
		s.stats.admitted.Add(-1)
		return nil, errBusy("mapping queue full (%d executing, %d queued)", s.workers, s.cfg.maxQueue())
	}
	var waitC <-chan time.Time
	if qw := s.cfg.queueWait(); qw > 0 {
		timer := time.NewTimer(qw)
		defer timer.Stop()
		waitC = timer.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.sem <- struct{}{}:
	case <-done:
		s.stats.admitted.Add(-1)
		return nil, ctxSvcError(ctx)
	case <-waitC:
		s.stats.admitted.Add(-1)
		return nil, errBusy("no worker slot within the %v queue-wait budget", s.cfg.queueWait())
	}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		s.stats.admitted.Add(-1)
	}, nil
}

// Drain waits for every admitted mapping job to finish. When ctx expires
// first, it fires the server's base context — hard-canceling the in-flight
// mappings through the pipeline's cancellation plumbing — waits (bounded)
// for them to abort, and reports true. New requests admitted during a drain
// are treated like any others; the caller is expected to have stopped the
// listener (http.Server.Shutdown) first.
func (s *Server) Drain(ctx context.Context) (hardCanceled bool) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.stats.admitted.Load() > 0 {
		select {
		case <-done:
			s.baseCancel()
			// In-flight mappings abort at their amortized cancellation
			// cadence; give them a bounded window to unwind before the
			// process exits underneath them.
			deadline := time.Now().Add(5 * time.Second)
			for s.stats.admitted.Load() > 0 && time.Now().Before(deadline) {
				<-tick.C
			}
			if n := s.stats.admitted.Load(); n > 0 {
				s.logger.Printf("codard: drain: %d mapping job(s) still running after hard cancel", n)
			}
			return true
		case <-tick.C:
		}
	}
	return false
}

// svcError is an error with an HTTP status, so the pipeline can signal
// 400 vs 404 vs 429 without the handlers re-classifying message strings.
// retryAfter > 0 adds a Retry-After header (429 rejections).
type svcError struct {
	status     int
	msg        string
	retryAfter int // seconds
}

func (e *svcError) Error() string { return e.msg }

func errBadRequest(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func errConflict(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusConflict, msg: fmt.Sprintf(format, args...)}
}

// errBusy is the backpressure rejection: 429 with a Retry-After hint.
func errBusy(format string, args ...interface{}) *svcError {
	return &svcError{status: http.StatusTooManyRequests, msg: fmt.Sprintf(format, args...), retryAfter: 1}
}

// ctxSvcError classifies a fired request context: an exceeded deadline is
// 504 (the server gave up on the mapping), anything else means the client
// went away (499, log/counter only).
func ctxSvcError(ctx context.Context) *svcError {
	if errors.Is(interrupt.Classify(ctx), interrupt.ErrDeadline) {
		return &svcError{status: http.StatusGatewayTimeout, msg: "mapping deadline exceeded"}
	}
	return &svcError{status: statusClientClosedRequest, msg: "client closed request"}
}

// mapSvcError classifies a mapping-stage failure: cancellation surfacing
// through the pipeline keeps its transport meaning (504/499); everything
// else is the caller's bad input (400).
func mapSvcError(stage string, err error) *svcError {
	switch {
	case errors.Is(err, interrupt.ErrDeadline):
		return &svcError{status: http.StatusGatewayTimeout, msg: fmt.Sprintf("%s: mapping deadline exceeded", stage)}
	case errors.Is(err, interrupt.ErrCanceled):
		return &svcError{status: statusClientClosedRequest, msg: fmt.Sprintf("%s: mapping canceled", stage)}
	}
	return errBadRequest("%s: %v", stage, err)
}

// decodeJSON decodes a request body into v, mapping the MaxBytesReader
// limit to 413 (the client sent too much, not malformed JSON) and every
// other decode failure to 400.
func decodeJSON(r *http.Request, v interface{}) *svcError {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &svcError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			}
		}
		return errBadRequest("bad request body: %v", err)
	}
	return nil
}

// writeJSON marshals v with a trailing newline (curl-friendly) and writes
// it with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError emits the uniform error body and bumps the outcome counters
// (every error status, plus the canceled/deadline/rejected breakdowns).
func (s *Server) writeError(w http.ResponseWriter, e *svcError) {
	s.stats.countError(e.status)
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// handleHealthz implements the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "healthz is GET-only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": time.Since(s.stats.start).Seconds(),
	})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Requests          uint64         `json:"requests"`
	Errors            uint64         `json:"errors"`
	InFlight          int64          `json:"in_flight"`
	QueueDepth        int64          `json:"queue_depth"`
	QueueCapacity     int            `json:"queue_capacity"`
	Workers           int            `json:"workers"`
	Canceled          uint64         `json:"canceled"`
	DeadlineExceeded  uint64         `json:"deadline_exceeded"`
	Rejected          uint64         `json:"rejected"`
	Panics            uint64         `json:"panics"`
	CacheHits         uint64         `json:"cache_hits"`
	CacheMisses       uint64         `json:"cache_misses"`
	CacheHitRate      float64        `json:"cache_hit_rate"`
	CacheSize         int            `json:"cache_size"`
	CacheCapacity     int            `json:"cache_capacity"`
	CustomDevices     int            `json:"custom_devices"`
	CalibratedDevices int            `json:"calibrated_devices"`
	UptimeSeconds     float64        `json:"uptime_seconds"`
	Latency           LatencySummary `json:"latency"`
}

// handleStats reports serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, &svcError{status: http.StatusMethodNotAllowed, msg: "stats is GET-only"})
		return
	}
	hits, misses := s.cache.Counters()
	inFlight := s.stats.inFlight.Load()
	queued := s.stats.admitted.Load() - inFlight
	if queued < 0 {
		queued = 0
	}
	resp := StatsResponse{
		Requests:          s.stats.requests.Load(),
		Errors:            s.stats.errors.Load(),
		InFlight:          inFlight,
		QueueDepth:        queued,
		QueueCapacity:     s.cfg.maxQueue(),
		Workers:           s.workers,
		Canceled:          s.stats.canceled.Load(),
		DeadlineExceeded:  s.stats.deadlines.Load(),
		Rejected:          s.stats.rejected.Load(),
		Panics:            s.stats.panics.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheSize:         s.cache.Len(),
		CacheCapacity:     s.cache.Capacity(),
		CustomDevices:     s.registry.CustomCount(),
		CalibratedDevices: s.registry.CalibrationCount(),
		UptimeSeconds:     time.Since(s.stats.start).Seconds(),
		Latency:           s.stats.latencies(),
	}
	if total := hits + misses; total > 0 {
		resp.CacheHitRate = float64(hits) / float64(total)
	}
	writeJSON(w, http.StatusOK, resp)
}
