package service

import (
	"net/http"
	"strconv"

	"codar/internal/metrics"
)

// handleMetrics implements GET /metrics: the Prometheus text exposition of
// the same counters /v1/stats reports as JSON, plus the per-shard cache
// breakdown as a labelled family. Hand-rolled via metrics.PromWriter —
// the repo is stdlib-only by policy.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, errMethodNotAllowed(http.MethodGet, "/metrics"))
		return
	}
	st := s.statsSnapshot()
	p := metrics.NewPromWriter()
	p.Counter("codard_requests_total", "Completed map requests (batch items included).", st.Requests)
	p.Counter("codard_errors_total", "Requests answered with an error envelope.", st.Errors)
	p.Counter("codard_mappings_total", "Completed mapping computations (cache hits and singleflight followers excluded).", st.Mappings)
	p.Counter("codard_canceled_total", "Requests whose client went away mid-mapping (499).", st.Canceled)
	p.Counter("codard_deadline_total", "Mappings canceled by their per-request deadline (504).", st.DeadlineExceeded)
	p.Counter("codard_rejected_total", "Backpressure rejections (429 queue_full).", st.Rejected)
	p.Counter("codard_quota_rejected_total", "Per-client quota rejections (429 quota_exceeded).", st.QuotaRejected)
	p.Counter("codard_panics_total", "Handler panics recovered to 500.", st.Panics)
	p.Gauge("codard_in_flight", "Mapping jobs holding a worker slot.", float64(st.InFlight))
	p.Gauge("codard_queue_depth", "Admitted mapping jobs waiting for a worker slot.", float64(st.QueueDepth))
	p.Gauge("codard_workers", "Worker-pool size.", float64(st.Workers))

	p.Counter("codard_cache_hits_total", "Result-store hits.", st.CacheHits)
	p.Counter("codard_cache_misses_total", "Result-store misses.", st.CacheMisses)
	p.Counter("codard_cache_evictions_total", "LRU evictions across shards.", st.CacheEvictions)
	p.Counter("codard_collapsed_total", "Requests served by a concurrent identical request's computation (singleflight followers).", st.Collapsed)
	p.Counter("codard_handoffs_total", "Singleflight follower retakes after a canceled leader.", st.Handoffs)
	p.Gauge("codard_cache_entries", "Entries resident in the result store.", float64(st.CacheSize))
	p.Gauge("codard_cache_pinned", "Hot entries pinned past LRU eviction.", float64(st.CachePinned))
	p.Gauge("codard_cache_shards", "Result-store shard count.", float64(st.CacheShards))

	p.Declare("codard_shard_hits_total", "counter", "Result-store hits per shard.")
	p.Declare("codard_shard_misses_total", "counter", "Result-store misses per shard.")
	p.Declare("codard_shard_evictions_total", "counter", "LRU evictions per shard.")
	p.Declare("codard_shard_entries", "gauge", "Resident entries per shard.")
	p.Declare("codard_shard_pinned", "gauge", "Pinned entries per shard.")
	for i, sh := range st.Shards {
		labels := map[string]string{"shard": strconv.Itoa(i)}
		p.Labeled("codard_shard_hits_total", labels, float64(sh.Hits))
		p.Labeled("codard_shard_misses_total", labels, float64(sh.Misses))
		p.Labeled("codard_shard_evictions_total", labels, float64(sh.Evictions))
		p.Labeled("codard_shard_entries", labels, float64(sh.Entries))
		p.Labeled("codard_shard_pinned", labels, float64(sh.Pinned))
	}

	if st.Jobs != nil {
		p.Counter("codard_jobs_submitted_total", "Async jobs accepted by POST /v1/jobs.", st.Jobs.Submitted)
		p.Counter("codard_jobs_done_total", "Async jobs finished with a result.", st.Jobs.Done)
		p.Counter("codard_jobs_failed_total", "Async jobs finished with a stored failure.", st.Jobs.Failed)
		p.Counter("codard_jobs_canceled_total", "Async jobs canceled before completion.", st.Jobs.Canceled)
		p.Counter("codard_jobs_expired_total", "Async jobs reclaimed by the TTL reaper.", st.Jobs.Expired)
		p.Gauge("codard_jobs_queued", "Async jobs waiting for dispatch.", float64(st.Jobs.Queued))
		p.Gauge("codard_jobs_running", "Async jobs executing.", float64(st.Jobs.Running))
		p.Gauge("codard_jobs_resident", "Async jobs held in any state.", float64(st.Jobs.Resident))
		p.Gauge("codard_jobs_capacity", "Job-store residency bound.", float64(st.Jobs.Capacity))
	}

	if st.Persist != nil {
		p.Counter("codard_persist_appended_total", "Entries appended to the warm-start log.", st.Persist.Appended)
		p.Counter("codard_persist_dropped_total", "Entries dropped from the warm-start log (queue or size overflow).", st.Persist.Dropped)
		p.Gauge("codard_persist_loaded", "Entries replayed from the warm-start log at boot.", float64(st.Persist.Loaded))
	}

	p.Gauge("codard_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	p.Gauge("codard_latency_p50_ms", "p50 request latency over the recent window (ms).", st.Latency.P50)
	p.Gauge("codard_latency_p99_ms", "p99 request latency over the recent window (ms).", st.Latency.P99)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(w)
}
