package service

import (
	"net/http"
	"path/filepath"
	"testing"

	"codar/internal/persist"
)

// TestWarmStartFromPersistLog is the end-to-end restart story: a server
// with a persist log maps a circuit, shuts down, and a fresh server opened
// on the same log answers the same request from cache without mapping.
func TestWarmStartFromPersistLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	req := MapRequest{QASM: ghzQASM, Arch: "tokyo"}

	log1, err := persist.Open(path, persist.Options{})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	s1 := newTestServer(t, Config{Workers: 2, Persist: log1})
	w := do(t, s1, http.MethodPost, "/v1/map", req)
	if w.Code != http.StatusOK {
		t.Fatalf("cold map: %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(cacheHeader); got != dispMiss {
		t.Fatalf("cold disposition = %q, want miss", got)
	}
	firstBody := w.Body.String()
	if err := log1.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	// "Restart": a brand-new server warm-started from the same log.
	log2, err := persist.Open(path, persist.Options{})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	defer log2.Close()
	if log2.Loaded() == 0 {
		t.Fatal("reopened log replayed nothing")
	}
	s2 := newTestServer(t, Config{Workers: 2, Persist: log2})
	w = do(t, s2, http.MethodPost, "/v1/map", req)
	if w.Code != http.StatusOK {
		t.Fatalf("warm map: %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(cacheHeader); got != dispHit {
		t.Fatalf("warm disposition = %q, want hit straight after restart", got)
	}
	if w.Body.String() != firstBody {
		t.Fatal("warm-start response differs from the original computation")
	}
	st := s2.statsSnapshot()
	if st.Mappings != 0 {
		t.Fatalf("warm server performed %d mappings, want 0", st.Mappings)
	}
	if st.Persist == nil || st.Persist.Loaded == 0 {
		t.Fatalf("stats persist block = %+v, want loaded > 0", st.Persist)
	}
}

// TestWarmHitsAreNotReAppended guards against the log growing on every
// restart: serving a warm hit must not echo the record back into the log.
func TestWarmHitsAreNotReAppended(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	req := MapRequest{QASM: ghzQASM, Arch: "tokyo"}

	log1, err := persist.Open(path, persist.Options{})
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	s1 := newTestServer(t, Config{Workers: 2, Persist: log1})
	if w := do(t, s1, http.MethodPost, "/v1/map", req); w.Code != http.StatusOK {
		t.Fatalf("cold map: %d", w.Code)
	}
	log1.Close()

	log2, err := persist.Open(path, persist.Options{})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	defer log2.Close()
	s2 := newTestServer(t, Config{Workers: 2, Persist: log2})
	for i := 0; i < 3; i++ {
		if w := do(t, s2, http.MethodPost, "/v1/map", req); w.Code != http.StatusOK {
			t.Fatalf("warm map %d: %d", i, w.Code)
		}
	}
	if app := log2.Stats().Appended; app != 0 {
		t.Fatalf("warm hits appended %d records to the log, want 0", app)
	}
}
