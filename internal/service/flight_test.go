package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"codar/internal/chaos"
)

// TestSingleflightCollapse is the headline store assertion: N concurrent
// identical cold requests perform exactly one mapping. The slow-mapper
// injector holds the leader in the worker slot long enough for every
// follower to join the flight; the responses must be byte-identical and
// the disposition split must be 1 miss + N-1 collapsed. Run under -race in
// CI (tier-1 includes the race pass).
func TestSingleflightCollapse(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{
		Workers: 4,
		Chaos:   &chaos.Injector{SlowMapper: 200 * time.Millisecond},
	})
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		disps  = map[string]int{}
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
			mu.Lock()
			defer mu.Unlock()
			if w.Code != http.StatusOK {
				t.Errorf("status = %d: %s", w.Code, w.Body.String())
				return
			}
			bodies = append(bodies, w.Body.Bytes())
			disps[w.Header().Get(cacheHeader)]++
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatal("concurrent identical requests returned different bytes")
		}
	}
	st := s.statsSnapshot()
	if st.Mappings != 1 {
		t.Fatalf("mappings = %d, want exactly 1 for %d identical concurrent requests", st.Mappings, n)
	}
	if st.Collapsed != uint64(n-1) {
		t.Fatalf("collapsed = %d, want %d", st.Collapsed, n-1)
	}
	// Disposition split: the leader reports miss, everyone else collapsed.
	if disps[dispMiss] != 1 || disps[dispCollapsed] != n-1 {
		t.Fatalf("dispositions = %v, want 1 miss / %d collapsed", disps, n-1)
	}
	// And the work is actually cached: one more request is a plain hit.
	w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if got := w.Header().Get(cacheHeader); got != dispHit {
		t.Fatalf("follow-up disposition = %q, want hit", got)
	}
}

// TestSingleflightLeaderCancelHandoff proves a canceled leader does not
// poison its followers: the leader's request context is canceled mid-map,
// a follower takes over the flight, recomputes, and succeeds.
func TestSingleflightLeaderCancelHandoff(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4,
		Chaos:   &chaos.Injector{SlowMapper: 300 * time.Millisecond},
	})
	body, _ := json.Marshal(MapRequest{QASM: ghzQASM, Arch: "tokyo"})

	// Leader: its own context dies shortly after it takes the flight.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/map", bytes.NewReader(body)).WithContext(leaderCtx)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		leaderDone <- w.Code
	}()
	// Let the leader win the flight election before the follower arrives.
	time.Sleep(50 * time.Millisecond)

	followerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/map", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		followerDone <- w
	}()
	time.Sleep(50 * time.Millisecond)
	cancelLeader()

	if code := <-leaderDone; code != statusClientClosedRequest {
		t.Fatalf("leader status = %d, want %d (client closed)", code, statusClientClosedRequest)
	}
	fw := <-followerDone
	if fw.Code != http.StatusOK {
		t.Fatalf("follower status = %d after handoff, want 200: %s", fw.Code, fw.Body.String())
	}
	st := s.statsSnapshot()
	if st.Handoffs == 0 {
		t.Fatal("handoffs counter did not move: follower never retook the flight")
	}
	if st.Mappings != 1 {
		t.Fatalf("mappings = %d, want 1 (the follower's retake)", st.Mappings)
	}
	if st.Canceled == 0 {
		t.Fatal("canceled counter did not move for the dead leader")
	}
}

// TestSingleflightSharesDeterministicErrors proves the other half of the
// handoff rule: a failure caused by the request itself (bad QASM) is
// shared with followers instead of retried — no stampede on poison keys.
func TestSingleflightSharesDeterministicErrors(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2,
		Chaos:   &chaos.Injector{SlowMapper: 200 * time.Millisecond},
	})
	const n = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: "OPENQASM 2.0; junk", Arch: "tokyo"})
			mu.Lock()
			statuses[w.Code]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if statuses[http.StatusBadRequest] != n {
		t.Fatalf("statuses = %v, want all %d as 400", statuses, n)
	}
	st := s.statsSnapshot()
	// At most one goroutine led each flight generation; with the slow
	// mapper holding the leader, the common case is exactly one attempt.
	// The invariant that must hold strictly: no successful mapping, no
	// handoffs (the failure is deterministic, not leader-owned).
	if st.Mappings != 0 {
		t.Fatalf("mappings = %d for a request that cannot map", st.Mappings)
	}
	if st.Handoffs != 0 {
		t.Fatalf("handoffs = %d, want 0 for a deterministic failure", st.Handoffs)
	}
}

// TestFlightAbortReleasesFollowers exercises the leader-panic safety net
// directly: an aborted flight wakes followers in handoff mode.
func TestFlightAbortReleasesFollowers(t *testing.T) {
	st := NewStore(StoreConfig{Capacity: 8, Shards: 1})
	_, f, leader := st.GetOrJoin("k")
	if !leader {
		t.Fatal("first joiner should lead")
	}
	_, f2, leader2 := st.GetOrJoin("k")
	if leader2 || f2 != f {
		t.Fatal("second joiner should follow the same flight")
	}
	go f.abort()
	select {
	case <-f2.done:
	case <-time.After(time.Second):
		t.Fatal("abort did not release the follower")
	}
	if val, err, handoff := f2.outcome(); val != nil || err != nil || !handoff {
		t.Fatalf("outcome = (%v, %v, %v), want handoff", val, err, handoff)
	}
	// The key is free again: the next joiner leads a fresh flight.
	if _, _, lead := st.GetOrJoin("k"); !lead {
		t.Fatal("aborted flight still registered in the shard")
	}
}

// TestBatchItemsReportCacheDisposition checks the new per-item Cache field
// uses the header vocabulary.
func TestBatchItemsReportCacheDisposition(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	// Prime the cache.
	if w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"}); w.Code != http.StatusOK {
		t.Fatalf("prime: %d", w.Code)
	}
	batch := BatchRequest{Requests: []MapRequest{
		{QASM: ghzQASM, Arch: "tokyo"},                // hit
		{QASM: ghzQASM, Arch: "tokyo", Algo: "sabre"}, // miss
		{QASM: ghzQASM, Arch: "nonexistent"},          // error: no disposition
	}}
	w := do(t, s, http.MethodPost, "/v1/map/batch", batch)
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Items[0].Cache != dispHit || !resp.Items[0].Cached {
		t.Fatalf("item 0 = %+v, want cache hit", resp.Items[0])
	}
	if resp.Items[1].Cache != dispMiss || resp.Items[1].Cached {
		t.Fatalf("item 1 = %+v, want cache miss", resp.Items[1])
	}
	if resp.Items[2].Cache != "" || resp.Items[2].Error == nil {
		t.Fatalf("item 2 = %+v, want error row without disposition", resp.Items[2])
	}
}
