package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// portReq builds a portfolio-mode request body around the shared test
// circuit.
func portReq(spec *PortfolioSpec) MapRequest {
	return MapRequest{QASM: ghzQASM, Arch: "tokyo", Portfolio: spec}
}

func TestPortfolioMapResponseShape(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodPost, "/v1/map", portReq(&PortfolioSpec{}))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Portfolio == nil {
		t.Fatal("response missing portfolio block")
	}
	p := resp.Portfolio
	if p.Objective != "min-depth" {
		t.Errorf("objective %q", p.Objective)
	}
	if len(p.Candidates) != 16 { // 2 seeds × 4 placements × 2 algorithms
		t.Errorf("report has %d candidates, want 16", len(p.Candidates))
	}
	if p.WinnerIndex < 0 || p.WinnerIndex >= len(p.Candidates) {
		t.Errorf("winner index %d out of range", p.WinnerIndex)
	}
	if resp.MappedQASM == "" || resp.WeightedDepth <= 0 {
		t.Errorf("winner fields missing: %+v", resp)
	}
	wr := p.WinnerReport()
	if resp.Algo != string(wr.Algorithm) || resp.Seed != wr.Seed {
		t.Errorf("top-level algo/seed (%s/%d) disagree with winner (%s/%d)",
			resp.Algo, resp.Seed, wr.Algorithm, wr.Seed)
	}
	// In-service portfolio runs never abandon (determinism of cold
	// computations); every candidate either completed or errored.
	for _, c := range p.Candidates {
		if c.Abandoned {
			t.Errorf("candidate %d abandoned inside the service", c.Index)
		}
	}
	if resp.BaselineWeightedDepth != 0 || resp.Speedup != 0 {
		t.Errorf("portfolio mode computed a baseline: %+v", resp)
	}
}

// TestPortfolioCacheKey pins the cache-key contract: the normalized spec is
// what keys the entry, so an explicit spelling of the defaults hits the
// empty block's entry, while a genuinely different grid misses — and
// portfolio mode never aliases single-shot entries.
func TestPortfolioCacheKey(t *testing.T) {
	s := newTestServer(t, Config{})

	first := do(t, s, http.MethodPost, "/v1/map", portReq(&PortfolioSpec{}))
	if first.Code != http.StatusOK || first.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("first: %d %s", first.Code, first.Header().Get(cacheHeader))
	}
	explicit := do(t, s, http.MethodPost, "/v1/map", portReq(&PortfolioSpec{
		Seeds:      []int64{1, 2},
		Placements: []string{"trivial", "random", "dense", "sabre-reverse"},
		Algorithms: []string{"codar", "sabre"},
		Objective:  "min-depth",
	}))
	if explicit.Header().Get(cacheHeader) != "hit" {
		t.Error("explicit defaults missed the default-spec entry")
	}
	if explicit.Body.String() != first.Body.String() {
		t.Error("cache hit returned different bytes")
	}
	// Algo and Seed are documented as ignored in portfolio mode, so
	// spelling them must not fragment the cache.
	ignored := portReq(&PortfolioSpec{})
	ignored.Algo = "sabre"
	ignored.Seed = 7
	if w := do(t, s, http.MethodPost, "/v1/map", ignored); w.Header().Get(cacheHeader) != "hit" {
		t.Error("ignored algo/seed fields fragmented the portfolio cache key")
	}
	other := do(t, s, http.MethodPost, "/v1/map", portReq(&PortfolioSpec{Seeds: []int64{3}}))
	if other.Header().Get(cacheHeader) != "miss" {
		t.Error("different seed set hit the default-spec entry")
	}
	single := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if single.Header().Get(cacheHeader) != "miss" {
		t.Error("single-shot request aliased a portfolio entry")
	}
}

func TestPortfolioValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	tests := []struct {
		name string
		spec *PortfolioSpec
	}{
		{"unknown objective", &PortfolioSpec{Objective: "fastest"}},
		{"unknown placement", &PortfolioSpec{Placements: []string{"clever"}}},
		{"unknown algorithm", &PortfolioSpec{Algorithms: []string{"astar"}}},
		{"max-esp without calibration", &PortfolioSpec{Objective: "max-esp"}},
		{"grid too large", &PortfolioSpec{Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, http.MethodPost, "/v1/map", portReq(tc.spec))
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
			}
		})
	}
}

// TestPortfolioCalibrated runs max-esp under an uploaded snapshot: the
// response must carry the calibration hash, an ESP, and a winner whose ESP
// dominates the grid.
func TestPortfolioCalibrated(t *testing.T) {
	s := newTestServer(t, Config{})
	uploadCalibration(t, s, "tokyo", 1)
	req := portReq(&PortfolioSpec{Objective: "max-esp", Seeds: []int64{1}})
	req.Calibrated = true
	w := do(t, s, http.MethodPost, "/v1/map", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Calibration == "" || resp.EstSuccess == nil {
		t.Fatalf("calibrated portfolio response missing calibration fields: %+v", resp)
	}
	for _, c := range resp.Portfolio.Candidates {
		if c.Err == "" && c.ESP > *resp.EstSuccess {
			t.Errorf("candidate %d ESP %v beats winner %v", c.Index, c.ESP, *resp.EstSuccess)
		}
	}
}
