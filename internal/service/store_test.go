package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// newOneShardStore builds a single-shard store, which preserves the exact
// global LRU semantics of the pre-sharding cache — the tests below assert
// them unchanged.
func newOneShardStore(capacity int) *Store {
	return NewStore(StoreConfig{Capacity: capacity, Shards: 1})
}

func TestStoreEvictsLeastRecentlyUsed(t *testing.T) {
	c := newOneShardStore(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch "a" so "b" becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
}

func TestStoreUpdateDoesNotGrow(t *testing.T) {
	c := newOneShardStore(2)
	c.Put("a", []byte("A1"))
	c.Put("a", []byte("A2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 after re-put", c.Len())
	}
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("A2")) {
		t.Fatalf("get a = %q, want A2", v)
	}
}

func TestStoreCounters(t *testing.T) {
	c := newOneShardStore(4)
	c.Put("a", []byte("A"))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters = %d/%d, want 2/1", hits, misses)
	}
}

func TestStoreDisabled(t *testing.T) {
	c := NewStore(StoreConfig{Capacity: 0})
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled store must never hit")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestStoreEvictionUnderChurn(t *testing.T) {
	const capacity = 16
	c := newOneShardStore(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > capacity {
			t.Fatalf("store grew to %d entries, capacity %d", c.Len(), capacity)
		}
	}
	// Exactly the newest `capacity` keys survive.
	for i := 10*capacity - capacity; i < 10*capacity; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d missing", i)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest key survived beyond capacity")
	}
}

// hexKey renders a sha256-style key for i, matching the production key
// format so shard selection exercises the hex-prefix path.
func hexKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestStoreShardGeometry(t *testing.T) {
	cases := []struct {
		capacity, shards, wantShards int
	}{
		{512, 0, 16},  // defaults
		{512, 16, 16}, // explicit
		{512, 9, 16},  // rounds up to a power of two
		{512, 4096, 256},
		{2, 16, 2},  // shards never exceed capacity
		{1, 16, 1},  // degenerate single shard
		{0, 16, 16}, // disabled cache keeps the asked-for shards
	}
	for _, tc := range cases {
		st := NewStore(StoreConfig{Capacity: tc.capacity, Shards: tc.shards})
		if st.Shards() != tc.wantShards {
			t.Errorf("Capacity %d Shards %d: got %d shards, want %d",
				tc.capacity, tc.shards, st.Shards(), tc.wantShards)
		}
	}
}

func TestStoreShardDistribution(t *testing.T) {
	st := NewStore(StoreConfig{Capacity: 4096, Shards: 16})
	const n = 2048
	for i := 0; i < n; i++ {
		st.Put(hexKey(i), []byte("v"))
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	shards := st.ShardStats()
	if len(shards) != 16 {
		t.Fatalf("shards = %d, want 16", len(shards))
	}
	// sha256 prefixes are uniform: with 2048 keys over 16 shards (mean
	// 128), any shard below half or above double the mean means the
	// selector is broken, not unlucky.
	for i, sh := range shards {
		if sh.Entries < 64 || sh.Entries > 256 {
			t.Errorf("shard %d holds %d entries (mean 128): selector skew", i, sh.Entries)
		}
	}
}

func TestStorePerShardEviction(t *testing.T) {
	// 4 shards × 4 slots. Filling one shard past its slice of the
	// capacity must evict within that shard, leaving the others alone.
	st := NewStore(StoreConfig{Capacity: 16, Shards: 4})
	var aKeys []string // keys landing in one chosen shard
	target := ""
	for i := 0; len(aKeys) < 6; i++ {
		k := hexKey(i)
		sh := fmt.Sprintf("%p", st.shardFor(k))
		if target == "" {
			target = sh
		}
		if sh == target {
			aKeys = append(aKeys, k)
		}
	}
	for _, k := range aKeys {
		st.Put(k, []byte("v"))
	}
	// 6 inserts into a 4-slot shard: exactly 2 evictions, all local.
	if ev := st.Evictions(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
	for _, k := range aKeys[:2] {
		if _, ok := st.Get(k); ok {
			t.Errorf("oldest key in the full shard survived")
		}
	}
	for _, k := range aKeys[2:] {
		if _, ok := st.Get(k); !ok {
			t.Errorf("recent key evicted from its shard")
		}
	}
}

func TestStoreHotKeyPinning(t *testing.T) {
	st := NewStore(StoreConfig{Capacity: 8, Shards: 1, PinThreshold: 3})
	st.Put("hot", []byte("H"))
	for i := 0; i < 3; i++ {
		st.Get("hot")
	}
	if st.PinnedCount() != 1 {
		t.Fatalf("pinned = %d, want 1 after crossing the threshold", st.PinnedCount())
	}
	// Churn far past capacity: the pinned key must survive where plain
	// LRU would have evicted it long ago.
	for i := 0; i < 100; i++ {
		st.Put(fmt.Sprintf("cold-%d", i), []byte("c"))
	}
	if v, ok := st.Get("hot"); !ok || !bytes.Equal(v, []byte("H")) {
		t.Fatal("pinned hot key was evicted by cold churn")
	}
	if st.Len() > 8 {
		t.Fatalf("store grew to %d entries, capacity 8", st.Len())
	}
}

func TestStorePinCapBoundsPinning(t *testing.T) {
	// capacity 8, 1 shard → maxPinned = 2. Hammering 5 keys pins only 2.
	st := NewStore(StoreConfig{Capacity: 8, Shards: 1, PinThreshold: 2})
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		st.Put(k, []byte("v"))
		for j := 0; j < 4; j++ {
			st.Get(k)
		}
	}
	if st.PinnedCount() != 2 {
		t.Fatalf("pinned = %d, want 2 (the per-shard cap)", st.PinnedCount())
	}
}

func TestStoreSeedDoesNotCount(t *testing.T) {
	st := NewStore(StoreConfig{Capacity: 8, Shards: 1})
	st.Seed("warm", []byte("W"))
	hits, misses := st.Counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("counters moved on Seed: %d/%d", hits, misses)
	}
	if v, ok := st.Get("warm"); !ok || !bytes.Equal(v, []byte("W")) {
		t.Fatal("seeded entry not readable")
	}
}
