package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"codar/internal/qasm"
	"codar/internal/workloads"
)

// ghzQASM is a small routing-forcing circuit: the CX star from qubit 0
// needs SWAPs on any sparsely coupled device.
const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[0],q[2];
cx q[0],q[3];
cx q[0],q[4];
t q[2];
cx q[3],q[1];
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(cfg)
}

// do runs one request through the handler stack and returns the recorder.
func do(t *testing.T, s *Server, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	default:
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(enc)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// doWithHeaders is do with extra request headers (e.g. X-Codard-Client).
func doWithHeaders(t *testing.T, s *Server, method, path string, body interface{}, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		enc, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(enc)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestMapHandlerTable(t *testing.T) {
	s := newTestServer(t, Config{})
	tests := []struct {
		name       string
		method     string
		body       interface{}
		wantStatus int
	}{
		{"codar ok", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "tokyo"}, http.StatusOK},
		{"sabre ok", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "melbourne", Algo: "sabre"}, http.StatusOK},
		{"durations preset ok", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "tokyo", Durations: "iontrap"}, http.StatusOK},
		{"bad json", http.MethodPost, `{"qasm": `, http.StatusBadRequest},
		{"missing qasm", http.MethodPost, MapRequest{Arch: "tokyo"}, http.StatusBadRequest},
		{"missing arch", http.MethodPost, MapRequest{QASM: ghzQASM}, http.StatusBadRequest},
		{"bad qasm", http.MethodPost, MapRequest{QASM: "OPENQASM 2.0; junk", Arch: "tokyo"}, http.StatusBadRequest},
		{"unknown arch", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "nonexistent-device"}, http.StatusNotFound},
		{"unknown algo", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "tokyo", Algo: "astar"}, http.StatusBadRequest},
		{"unknown durations", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "tokyo", Durations: "photonic"}, http.StatusBadRequest},
		{"circuit too wide", http.MethodPost, MapRequest{QASM: ghzQASM, Arch: "ring3"}, http.StatusBadRequest},
		{"get not allowed", http.MethodGet, nil, http.StatusMethodNotAllowed},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, "/v1/map", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if tc.wantStatus != http.StatusOK {
				var env ErrorEnvelope
				if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
					t.Fatalf("error body not in envelope shape: %s", w.Body.String())
				}
				return
			}
			var resp MapResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("decode response: %v", err)
			}
			if resp.MappedQASM == "" {
				t.Fatal("empty mapped_qasm")
			}
			if _, err := qasm.Parse(resp.MappedQASM); err != nil {
				t.Fatalf("mapped qasm does not re-parse: %v", err)
			}
			if resp.WeightedDepth <= 0 {
				t.Fatalf("weighted_depth = %d, want > 0", resp.WeightedDepth)
			}
		})
	}
}

func TestMapBaselineSpeedup(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.BaselineWeightedDepth <= 0 || resp.Speedup <= 0 {
		t.Fatalf("codar default should include a SABRE baseline, got %+v", resp)
	}
	// SABRE compared against itself is not a comparison: baseline defaults off.
	w = do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Algo: "sabre"})
	var sresp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sresp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sresp.Speedup != 0 || sresp.BaselineWeightedDepth != 0 {
		t.Fatalf("sabre response should omit the baseline block, got %+v", sresp)
	}
	// An explicit baseline:true on sabre is forced off, so it shares the
	// plain-sabre cache entry instead of duplicating identical bytes.
	on := true
	w = do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Algo: "sabre", Baseline: &on})
	if got := w.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("sabre baseline:true cache header = %q, want hit (forced-off baseline must share the key)", got)
	}
}

func TestMapBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := MapRequest{QASM: ghzQASM + strings.Repeat("// padding\n", 200), Arch: "tokyo"}
	w := do(t, s, http.MethodPost, "/v1/map", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body: %s", w.Code, w.Body.String())
	}
}

func TestMapCacheHitIdenticalBytes(t *testing.T) {
	s := newTestServer(t, Config{})
	req := MapRequest{QASM: ghzQASM, Arch: "tokyo", Seed: 7}
	first := do(t, s, http.MethodPost, "/v1/map", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first request failed: %s", first.Body.String())
	}
	if got := first.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	second := do(t, s, http.MethodPost, "/v1/map", req)
	if got := second.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit returned different bytes than the original response")
	}
	// Aliases of the same builtin share one entry.
	third := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "q20", Seed: 7})
	if got := third.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("alias request cache header = %q, want hit", got)
	}
	// /v1/stats reflects the hits.
	var stats StatsResponse
	sw := do(t, s, http.MethodGet, "/v1/stats", nil)
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.CacheHits != 2 || stats.CacheMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 2/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.CacheHitRate <= 0.6 {
		t.Fatalf("hit rate = %v, want 2/3", stats.CacheHitRate)
	}
}

// TestCacheKeySeedAndDurations pins the DESIGN.md §7 invariant: seed and
// durations both change the mapped output, so each must key the cache.
func TestCacheKeySeedAndDurations(t *testing.T) {
	s := newTestServer(t, Config{})
	base := MapRequest{QASM: ghzQASM, Arch: "tokyo", Seed: 1}
	if w := do(t, s, http.MethodPost, "/v1/map", base); w.Header().Get(cacheHeader) != "miss" {
		t.Fatal("priming request should miss")
	}
	variants := []MapRequest{
		{QASM: ghzQASM, Arch: "tokyo", Seed: 2},
		{QASM: ghzQASM, Arch: "tokyo", Seed: 1, Durations: "iontrap"},
		{QASM: ghzQASM, Arch: "tokyo", Seed: 1, Algo: "sabre"},
	}
	for _, v := range variants {
		w := do(t, s, http.MethodPost, "/v1/map", v)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %+v failed: %s", v, w.Body.String())
		}
		if got := w.Header().Get(cacheHeader); got != "miss" {
			t.Fatalf("variant %+v cache header = %q, want miss (key must include seed/durations/algo)", v, got)
		}
	}
}

func TestDevicesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := DeviceSpec{
		Name:   "lab-hexagon",
		Qubits: 6,
		Edges:  [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}},
	}
	if w := do(t, s, http.MethodPost, "/v1/devices", spec); w.Code != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", w.Code, w.Body.String())
	}
	// Listed alongside the builtins.
	var listing struct {
		Devices []DeviceInfo `json:"devices"`
	}
	lw := do(t, s, http.MethodGet, "/v1/devices", nil)
	if err := json.Unmarshal(lw.Body.Bytes(), &listing); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	found := false
	for _, d := range listing.Devices {
		if d.Name == "lab-hexagon" {
			found = true
			if d.Builtin || d.Qubits != 6 || d.Couplers != 6 {
				t.Fatalf("bad listing row: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("uploaded device missing from listing")
	}
	// Mappable.
	if w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "lab-hexagon"}); w.Code != http.StatusOK {
		t.Fatalf("map on uploaded device: status %d: %s", w.Code, w.Body.String())
	}
	// Conflicts and invalid uploads.
	if w := do(t, s, http.MethodPost, "/v1/devices", spec); w.Code != http.StatusConflict {
		t.Fatalf("duplicate upload: status %d, want 409", w.Code)
	}
	builtin := spec
	builtin.Name = "tokyo"
	if w := do(t, s, http.MethodPost, "/v1/devices", builtin); w.Code != http.StatusConflict {
		t.Fatalf("builtin shadow: status %d, want 409", w.Code)
	}
	disconnected := DeviceSpec{Name: "island", Qubits: 4, Edges: [][2]int{{0, 1}}}
	if w := do(t, s, http.MethodPost, "/v1/devices", disconnected); w.Code != http.StatusBadRequest {
		t.Fatalf("disconnected graph: status %d, want 400", w.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	batch := BatchRequest{Requests: []MapRequest{
		{QASM: ghzQASM, Arch: "tokyo"},
		{QASM: ghzQASM, Arch: "nonexistent"},
		{QASM: ghzQASM, Arch: "tokyo"}, // duplicate of item 0: may be a hit
	}}
	w := do(t, s, http.MethodPost, "/v1/map/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(resp.Items))
	}
	if resp.Items[0].Status != http.StatusOK || len(resp.Items[0].Result) == 0 {
		t.Fatalf("item 0 should succeed: %+v", resp.Items[0])
	}
	if resp.Items[1].Status != http.StatusNotFound || resp.Items[1].Error == nil || resp.Items[1].Error.Code != "unknown_device" {
		t.Fatalf("item 1 should 404 with code unknown_device: %+v", resp.Items[1])
	}
	if resp.Items[2].Status != http.StatusOK {
		t.Fatalf("item 2 should succeed: %+v", resp.Items[2])
	}
	if !bytes.Equal(resp.Items[0].Result, resp.Items[2].Result) {
		t.Fatal("identical batch items returned different results")
	}
	// Oversized batches are rejected, not truncated.
	over := BatchRequest{Requests: make([]MapRequest, DefaultMaxBatch+1)}
	for i := range over.Requests {
		over.Requests[i] = MapRequest{QASM: ghzQASM, Arch: "tokyo"}
	}
	if w := do(t, s, http.MethodPost, "/v1/map/batch", over); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", w.Code)
	}
}

func TestHealthzAndStatsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	hw := do(t, s, http.MethodGet, "/healthz", nil)
	if hw.Code != http.StatusOK || !strings.Contains(hw.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", hw.Code, hw.Body.String())
	}
	if w := do(t, s, http.MethodPost, "/healthz", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("healthz POST: %d, want 405", w.Code)
	}
	var stats StatsResponse
	sw := do(t, s, http.MethodGet, "/v1/stats", nil)
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Workers < 1 || stats.CacheCapacity != DefaultCacheSize {
		t.Fatalf("bad stats defaults: %+v", stats)
	}
}

// TestConcurrentMap hammers a live server with a mix of repeated and
// distinct circuits. Run under -race (the CI race job does) it proves the
// registry/cache/pool plumbing is data-race-free; the byte-comparison
// proves concurrency never changes a mapping (the pipeline is
// deterministic, so every response for a given request must be identical).
func TestConcurrentMap(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, CacheSize: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	suite := workloads.FamousSeven()
	reqs := make([]MapRequest, len(suite))
	for i, b := range suite {
		reqs[i] = MapRequest{QASM: qasm.Write(b.Circuit()), Arch: "melbourne", Seed: int64(i%3) + 1}
	}
	const rounds = 4
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		var err error
		if want[i], err = postMap(ts.Client(), ts.URL, r); err != nil {
			t.Fatalf("serial baseline %d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(reqs))
	for round := 0; round < rounds; round++ {
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := postMap(ts.Client(), ts.URL, reqs[i])
				if err != nil {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
				if !bytes.Equal(got, want[i]) {
					errs <- fmt.Errorf("request %d: concurrent response differs from serial baseline", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var stats StatsResponse
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.InFlight != 0 {
		t.Fatalf("in_flight = %d after quiescence, want 0", stats.InFlight)
	}
	if stats.CacheHits == 0 {
		t.Fatal("repeated circuits produced no cache hits")
	}
	if wantReqs := uint64((rounds + 1) * len(reqs)); stats.Requests != wantReqs {
		t.Fatalf("requests = %d, want %d", stats.Requests, wantReqs)
	}
}

// postMap POSTs one map request over real HTTP and returns the body. It
// returns errors instead of failing the test so it is safe to call from
// spawned goroutines (FailNow must run on the test goroutine).
func postMap(client *http.Client, url string, req MapRequest) ([]byte, error) {
	enc, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	resp, err := client.Post(url+"/v1/map", "application/json", bytes.NewReader(enc))
	if err != nil {
		return nil, fmt.Errorf("post: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
