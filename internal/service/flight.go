package service

// Singleflight collapse for the result store: when N identical cold
// requests arrive concurrently, GetOrJoin elects exactly one leader to run
// the Codar mapping while the other N-1 park on the flight and share the
// leader's bytes. This composes with the admission queue — followers never
// take a worker slot — and with per-request deadlines: a leader that dies
// for reasons of its *own* (its client hung up, its deadline expired)
// finishes the flight in handoff mode, and each waiting follower loops back
// into GetOrJoin where one of them becomes the next leader. Deterministic
// failures (bad QASM, unknown device) are shared with followers instead, so
// a poison request does not trigger a retry stampede.

// flight is one in-progress computation of a cache key.
type flight struct {
	sh  *shard
	key string

	done    chan struct{}
	val     []byte
	err     *svcError
	handoff bool

	settled bool // guarded by sh.mu; makes finish/abort idempotent
}

// GetOrJoin is the cold-path entry to the store, one shard-locked
// operation covering both lookup and flight election:
//
//   - cache hit:        returns (bytes, nil, false)
//   - no flight underway: registers one, returns (nil, flight, true) —
//     the caller is the leader and MUST settle the flight via finish,
//     fail, or abort (deferred), or followers hang until their own
//     deadlines fire.
//   - flight underway:  returns (nil, flight, false) — the caller is a
//     follower and waits on flight.wait.
func (st *Store) GetOrJoin(key string) ([]byte, *flight, bool) {
	sh := st.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.get(key); ok {
		return v, nil, false
	}
	if f, ok := sh.flights[key]; ok {
		return nil, f, false
	}
	f := &flight{sh: sh, key: key, done: make(chan struct{})}
	sh.flights[key] = f
	return nil, f, true
}

// settle removes the flight from its shard and wakes the followers. The
// first call wins; later calls (e.g. the leader's deferred abort after a
// normal finish) are no-ops.
func (f *flight) settle(val []byte, err *svcError, handoff bool) {
	f.sh.mu.Lock()
	if f.settled {
		f.sh.mu.Unlock()
		return
	}
	f.settled = true
	delete(f.sh.flights, f.key)
	f.val, f.err, f.handoff = val, err, handoff
	f.sh.mu.Unlock()
	close(f.done)
}

// finish publishes the leader's successful bytes to the followers.
func (f *flight) finish(val []byte) { f.settle(val, nil, false) }

// fail publishes the leader's error. With handoff true (the leader's
// failure was about the leader, not the request — 499 client-gone, 504
// deadline), followers re-enter GetOrJoin and elect a new leader; with
// handoff false the error is deterministic and every follower shares it.
func (f *flight) fail(err *svcError, handoff bool) { f.settle(nil, err, handoff) }

// abort is the leader's deferred safety net: if the flight is still open
// when the leader unwinds (panic in the mapper, early return path that
// forgot to settle), followers are released in handoff mode so one of them
// retries instead of inheriting a blank 500 — the panic is the leader's
// fault, not the request's. No-op after finish/fail.
func (f *flight) abort() { f.settle(nil, nil, true) }

// outcome reads the settled flight. Only valid after f.done is closed.
func (f *flight) outcome() (val []byte, err *svcError, handoff bool) {
	return f.val, f.err, f.handoff
}
