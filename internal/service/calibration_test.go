package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"codar/internal/arch"
	"codar/internal/calib"
)

// uploadCalibration posts a synthetic snapshot for the named device and
// returns the reported hash.
func uploadCalibration(t *testing.T, s *Server, name string, seed int64) string {
	t.Helper()
	dev, err := s.Registry().Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	snap := calib.Synthetic(dev, seed)
	w := do(t, s, http.MethodPost, "/v1/devices/"+name+"/calibration", snap)
	if w.Code != http.StatusCreated {
		t.Fatalf("upload status = %d; body: %s", w.Code, w.Body.String())
	}
	var info CalibrationInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Hash == "" || info.Qubits != dev.NumQubits || info.Couplers != len(dev.Edges) {
		t.Fatalf("bad upload info: %+v", info)
	}
	return info.Hash
}

func TestCalibrationUploadAndGet(t *testing.T) {
	s := newTestServer(t, Config{})
	// GET before upload: 404.
	if w := do(t, s, http.MethodGet, "/v1/devices/tokyo/calibration", nil); w.Code != http.StatusNotFound {
		t.Fatalf("pre-upload GET status = %d", w.Code)
	}
	hash := uploadCalibration(t, s, "tokyo", 1)
	w := do(t, s, http.MethodGet, "/v1/devices/tokyo/calibration", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET status = %d; body: %s", w.Code, w.Body.String())
	}
	var got struct {
		Info     CalibrationInfo `json:"info"`
		Snapshot *calib.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Info.Hash != hash {
		t.Errorf("hash mismatch: %s vs %s", got.Info.Hash, hash)
	}
	if got.Snapshot.Hash() != hash {
		t.Errorf("returned snapshot rehashes to %s, want %s", got.Snapshot.Hash(), hash)
	}
	// Aliases resolve to the same record.
	if w := do(t, s, http.MethodGet, "/v1/devices/ibm-q20-tokyo/calibration", nil); w.Code != http.StatusOK {
		t.Errorf("alias GET status = %d", w.Code)
	}
}

func TestCalibrationUploadErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	tokyo, err := s.Registry().Resolve("tokyo")
	if err != nil {
		t.Fatal(err)
	}
	wrong := calib.Synthetic(arch.Linear(5), 1)
	tests := []struct {
		name       string
		method     string
		path       string
		body       interface{}
		wantStatus int
	}{
		{"unknown device", http.MethodPost, "/v1/devices/nonexistent/calibration", calib.Synthetic(tokyo, 1), http.StatusNotFound},
		{"wrong topology", http.MethodPost, "/v1/devices/tokyo/calibration", wrong, http.StatusBadRequest},
		{"bad json", http.MethodPost, "/v1/devices/tokyo/calibration", `{"qubits": `, http.StatusBadRequest},
		{"bad subpath", http.MethodPost, "/v1/devices/tokyo/frobnicate", calib.Synthetic(tokyo, 1), http.StatusNotFound},
		{"delete not allowed", http.MethodDelete, "/v1/devices/tokyo/calibration", nil, http.StatusMethodNotAllowed},
		{"get missing", http.MethodGet, "/v1/devices/melbourne/calibration", nil, http.StatusNotFound},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.wantStatus, w.Body.String())
			}
		})
	}
}

func TestCalibratedMapRequiresSnapshot(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Calibrated: true})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", w.Code, w.Body.String())
	}
}

func TestCalibratedMapResponseAndCacheKey(t *testing.T) {
	s := newTestServer(t, Config{})
	hash := uploadCalibration(t, s, "tokyo", 1)

	// Uncalibrated request first: its bytes must be unaffected by
	// calibration existing on the device.
	base := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if base.Code != http.StatusOK {
		t.Fatalf("uncalibrated status = %d", base.Code)
	}
	var baseResp MapResponse
	if err := json.Unmarshal(base.Body.Bytes(), &baseResp); err != nil {
		t.Fatal(err)
	}
	if baseResp.Calibration != "" || baseResp.EstSuccess != nil {
		t.Errorf("uncalibrated response carries calibration fields: %+v", baseResp)
	}

	cal := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Calibrated: true})
	if cal.Code != http.StatusOK {
		t.Fatalf("calibrated status = %d; body: %s", cal.Code, cal.Body.String())
	}
	if cal.Header().Get(cacheHeader) != "miss" {
		t.Errorf("calibrated first request disposition %q, want miss", cal.Header().Get(cacheHeader))
	}
	var calResp MapResponse
	if err := json.Unmarshal(cal.Body.Bytes(), &calResp); err != nil {
		t.Fatal(err)
	}
	if calResp.Calibration != hash {
		t.Errorf("calibration hash %q, want %q", calResp.Calibration, hash)
	}
	if calResp.EstSuccess == nil || *calResp.EstSuccess <= 0 || *calResp.EstSuccess > 1 {
		t.Errorf("est_success = %v, want present and in (0,1]", calResp.EstSuccess)
	}
	if calResp.BaselineEstSuccess == nil || *calResp.BaselineEstSuccess <= 0 {
		t.Errorf("baseline_est_success = %v, want present and > 0", calResp.BaselineEstSuccess)
	}

	// The repeat is a byte-identical cache hit.
	rep := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Calibrated: true})
	if rep.Header().Get(cacheHeader) != "hit" {
		t.Fatalf("repeat disposition %q, want hit", rep.Header().Get(cacheHeader))
	}
	if rep.Body.String() != cal.Body.String() {
		t.Error("cache hit bytes differ from original response")
	}

	// Replacing the snapshot re-keys calibrated entries (miss with the new
	// hash) while uncalibrated entries still hit.
	newHash := uploadCalibration(t, s, "tokyo", 2)
	if newHash == hash {
		t.Fatal("re-upload produced the same hash")
	}
	after := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo", Calibrated: true})
	if after.Header().Get(cacheHeader) != "miss" {
		t.Errorf("post-replace disposition %q, want miss", after.Header().Get(cacheHeader))
	}
	var afterResp MapResponse
	if err := json.Unmarshal(after.Body.Bytes(), &afterResp); err != nil {
		t.Fatal(err)
	}
	if afterResp.Calibration != newHash {
		t.Errorf("post-replace hash %q, want %q", afterResp.Calibration, newHash)
	}
	baseRepeat := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "tokyo"})
	if baseRepeat.Header().Get(cacheHeader) != "hit" {
		t.Errorf("uncalibrated repeat disposition %q, want hit", baseRepeat.Header().Get(cacheHeader))
	}
	if baseRepeat.Body.String() != base.Body.String() {
		t.Error("uncalibrated bytes changed after calibration upload")
	}
}

func TestCalibrationOnCustomDeviceAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := DeviceSpec{Name: "lab-ring", Qubits: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}}
	if w := do(t, s, http.MethodPost, "/v1/devices", spec); w.Code != http.StatusCreated {
		t.Fatalf("device upload status = %d; body: %s", w.Code, w.Body.String())
	}
	uploadCalibration(t, s, "lab-ring", 1)
	w := do(t, s, http.MethodPost, "/v1/map", MapRequest{QASM: ghzQASM, Arch: "lab-ring", Calibrated: true})
	if w.Code != http.StatusOK {
		t.Fatalf("calibrated map on custom device: %d; body: %s", w.Code, w.Body.String())
	}
	stats := do(t, s, http.MethodGet, "/v1/stats", nil)
	var sr StatsResponse
	if err := json.Unmarshal(stats.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.CalibratedDevices != 1 {
		t.Errorf("calibrated_devices = %d, want 1", sr.CalibratedDevices)
	}
}

// TestCalibrationStoreBounded: distinct parametric device names cannot grow
// the calibration store past its cap, but replacing an existing device's
// snapshot always succeeds.
func TestCalibrationStoreBounded(t *testing.T) {
	s := newTestServer(t, Config{})
	reg := s.Registry()
	full := 0
	for n := 3; ; n++ {
		name := fmt.Sprintf("linear%d", n)
		dev, err := reg.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, serr := reg.SetCalibration(name, calib.Synthetic(dev, 1)); serr != nil {
			if serr.status != http.StatusConflict {
				t.Fatalf("unexpected rejection status %d: %v", serr.status, serr)
			}
			full = reg.CalibrationCount()
			break
		}
		if n > 3+2*calibCap {
			t.Fatal("calibration store never filled")
		}
	}
	if full != calibCap {
		t.Errorf("store filled at %d entries, want %d", full, calibCap)
	}
	// Replacement of an existing key is still allowed at capacity.
	dev, err := reg.Resolve("linear3")
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := reg.SetCalibration("linear3", calib.Synthetic(dev, 2)); serr != nil {
		t.Errorf("replacement at capacity rejected: %v", serr)
	}
}
