package service

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU of rendered /v1/map response bodies. Storing
// the marshalled bytes rather than the decoded result guarantees the
// "cache hit returns identical bytes" contract: a hit is written to the
// wire verbatim, so clients can never observe re-marshalling drift.
//
// A capacity <= 0 disables caching entirely (every Get is a miss, Put is a
// no-op) while still counting misses, so /v1/stats stays meaningful when
// the operator runs uncached benchmarks.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key   string
	value []byte
}

// NewCache builds an LRU cache holding at most capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and refreshes its recency. The
// returned slice is shared: callers must treat it as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).value, true
	}
	c.misses++
	return nil, false
}

// Put stores value under key, evicting the least recently used entry when
// the cache is full. The cache takes ownership of value.
func (c *Cache) Put(key string, value []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).value = value
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, value: value})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the configured maximum entry count.
func (c *Cache) Capacity() int { return c.capacity }

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
