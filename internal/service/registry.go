package service

import (
	"sort"
	"strings"
	"sync"

	"codar/internal/arch"
	"codar/internal/calib"
)

// Registry resolves device names for mapping requests. Builtins delegate to
// arch.ByName (each resolution constructs a fresh device, so requests never
// share builtin state); custom devices uploaded via POST /v1/devices are
// stored once and shared read-only — mapping never mutates a Device, and
// per-request duration overrides operate on a shallow copy (see withDurations).
type Registry struct {
	mu     sync.RWMutex
	custom map[string]*arch.Device // keyed by lower-case name
	// calib holds uploaded calibration snapshots with their derived cost
	// models and hashes, keyed by the lower-case *resolved* device name so
	// aliases (tokyo, q20, ibm-q20-tokyo) share one record. Replacing a
	// snapshot changes its hash, which re-keys every cached mapping result.
	calib map[string]*Calibration
	// builtins memoizes arch.ByName results by request alias, so the hot
	// serving path (and especially the cache-hit path, which resolves only
	// to canonicalize the cache key) skips rebuilding the all-pairs
	// distance matrix per request. Bounded: beyond builtinMemoCap distinct
	// aliases (hostile parametric names like grid40x40) resolution falls
	// back to per-request construction instead of growing the memo.
	builtins map[string]*arch.Device
}

// builtinMemoCap bounds the resolved-builtin memo (see Registry.builtins).
const builtinMemoCap = 64

// calibCap bounds the calibration store for the same reason builtinMemoCap
// bounds the builtin memo: parametric names (grid40x40, linear500, ...)
// resolve on demand, and each stored Calibration retains an n² cost-model
// matrix. Replacing an existing device's snapshot is always allowed; only
// calibrating the cap+1-th distinct device is rejected.
const calibCap = 64

// builtinNames are the concrete built-in models listed by GET /v1/devices.
// The parametric families (gridRxC, linearN, ringN) resolve through
// arch.ByName but are advertised separately as patterns.
var builtinNames = []string{"q5", "qx4", "melbourne", "tokyo", "enfield", "sycamore"}

// ParametricFamilies are the name patterns arch.ByName synthesises on
// demand (e.g. grid3x4, linear9, ring12).
var ParametricFamilies = []string{"gridRxC", "linearN", "ringN"}

// Calibration is one stored device calibration: the snapshot itself, the
// cost model derived from it at upload time (built once, shared read-only by
// every calibrated request), the canonical snapshot hash that joins the
// result-cache key, and the resolved device name the record is keyed under.
type Calibration struct {
	Snap   *calib.Snapshot
	Cost   *arch.CostModel
	Hash   string
	Device string
}

// NewRegistry builds an empty registry (builtins are always available).
func NewRegistry() *Registry {
	return &Registry{
		custom:   make(map[string]*arch.Device),
		builtins: make(map[string]*arch.Device),
		calib:    make(map[string]*Calibration),
	}
}

// Resolve returns the device for a user-facing name: custom devices win,
// then the (memoized) builtin catalogue. Resolved devices are shared and
// read-only; mapping never mutates a Device, and duration overrides copy
// first (withDurations). The error distinguishes "unknown" for the 404
// mapping in the handlers.
func (r *Registry) Resolve(name string) (*arch.Device, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	dev, ok := r.custom[key]
	if !ok {
		dev, ok = r.builtins[key]
	}
	r.mu.RUnlock()
	if ok {
		return dev, nil
	}
	dev, err := arch.ByName(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(r.builtins) < builtinMemoCap {
		r.builtins[key] = dev
	}
	r.mu.Unlock()
	return dev, nil
}

// Add registers a custom device. Names that collide with a builtin (or a
// parametric family instance) or an existing custom device are rejected
// with 409, so a cache key of (circuit, device name, ...) can never alias
// two different topologies.
func (r *Registry) Add(dev *arch.Device) *svcError {
	key := strings.ToLower(strings.TrimSpace(dev.Name))
	if key == "" {
		return errBadRequest("device name must be non-empty")
	}
	if _, err := arch.ByName(key); err == nil {
		return errConflict("device %q shadows a builtin", dev.Name)
	}
	if err := dev.Validate(); err != nil {
		return errBadRequest("%v", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.custom[key]; ok {
		return errConflict("device %q already registered", dev.Name)
	}
	r.custom[key] = dev
	return nil
}

// infoOf renders one row of the GET /v1/devices listing (DeviceInfo is
// the api wire type, aliased in aliases.go).
func infoOf(dev *arch.Device, builtin bool) DeviceInfo {
	return DeviceInfo{
		Name:     dev.Name,
		Qubits:   dev.NumQubits,
		Couplers: len(dev.Edges),
		Diameter: dev.Diameter(),
		Builtin:  builtin,
	}
}

// List returns the builtin catalogue plus all custom devices, sorted by
// name within each group (builtins first).
func (r *Registry) List() []DeviceInfo {
	out := make([]DeviceInfo, 0, len(builtinNames))
	for _, name := range builtinNames {
		dev, err := arch.ByName(name)
		if err != nil {
			continue // unreachable for the vetted builtin list
		}
		out = append(out, infoOf(dev, true))
	}
	r.mu.RLock()
	customs := make([]*arch.Device, 0, len(r.custom))
	for _, dev := range r.custom {
		customs = append(customs, dev)
	}
	r.mu.RUnlock()
	sort.Slice(customs, func(i, j int) bool { return customs[i].Name < customs[j].Name })
	for _, dev := range customs {
		out = append(out, infoOf(dev, false))
	}
	return out
}

// CustomCount returns the number of uploaded devices (for /v1/stats).
func (r *Registry) CustomCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.custom)
}

// SetCalibration validates and stores a calibration snapshot for the device
// named by the request (builtin or custom), building its cost model once.
// Re-uploading replaces the previous snapshot — daily calibration refreshes
// are the normal cadence — and the changed hash re-keys the result cache, so
// stale cached mappings can never be served as calibrated results.
func (r *Registry) SetCalibration(deviceName string, snap *calib.Snapshot) (*Calibration, *svcError) {
	dev, err := r.Resolve(deviceName)
	if err != nil {
		return nil, errUnknownDevice("%v", err)
	}
	if err := snap.Validate(dev); err != nil {
		return nil, errBadRequest("%v", err)
	}
	cost, err := snap.CostModel(dev, 0)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	cal := &Calibration{Snap: snap, Cost: cost, Hash: snap.Hash(), Device: dev.Name}
	key := strings.ToLower(dev.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.calib[key]; !exists && len(r.calib) >= calibCap {
		return nil, errConflict("calibration store holds %d devices (max %d); replace an existing one", len(r.calib), calibCap)
	}
	r.calib[key] = cal
	return cal, nil
}

// Calibration returns the stored calibration for a *resolved* device name
// (use the name of the device returned by Resolve, so aliases hit the same
// record).
func (r *Registry) Calibration(resolvedName string) (*Calibration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cal, ok := r.calib[strings.ToLower(resolvedName)]
	return cal, ok
}

// CalibrationCount returns the number of calibrated devices (for /v1/stats).
func (r *Registry) CalibrationCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.calib)
}

// withDurations returns dev with the duration map replaced, shallow-copying
// the device so concurrent requests with different presets never race on
// the shared registry entry. The copy aliases the immutable adjacency,
// distance and coordinate tables, so it is allocation-cheap.
func withDurations(dev *arch.Device, d arch.Durations) *arch.Device {
	cp := *dev
	cp.Durations = d
	return &cp
}

// durationsByName resolves a duration-preset name. The empty string keeps
// the device's own durations (builtins default to superconducting; custom
// devices keep whatever they were registered with).
func durationsByName(name string) (arch.Durations, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "superconducting":
		return arch.SuperconductingDurations(), true
	case "iontrap":
		return arch.IonTrapDurations(), true
	case "neutralatom":
		return arch.NeutralAtomDurations(), true
	case "uniform":
		return arch.UniformDurations(), true
	}
	return arch.Durations{}, false
}
