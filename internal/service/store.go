package service

import (
	"container/list"
	"sync"

	"codar/internal/persist"
)

// Store is the sharded result store behind /v1/map: rendered response
// bodies keyed by the sha256 circuit hash, split across 2^k shards so
// concurrent hits on different circuits never contend on one lock. Each
// shard owns its own LRU, its own counters and its own singleflight table;
// the shard is picked from the key's leading hex byte, which is uniform
// because the key is a cryptographic hash.
//
// Storing the marshalled bytes rather than the decoded result preserves the
// PR 3 contract: a hit is written to the wire verbatim, so clients can
// never observe re-marshalling drift.
//
// Three behaviours layer on top of the per-shard LRU:
//
//   - Hot-key pinning: an entry hit pinThreshold times is removed from the
//     LRU list entirely (up to a per-shard cap), so a scan of cold keys
//     cannot evict the circuits the fleet maps all day.
//   - Singleflight: GetOrJoin gives concurrent identical cold requests one
//     leader and N-1 followers sharing the leader's bytes (flight.go).
//   - Persistence: with SetPersist, successful Puts stream to an
//     append-only log replayed into Seed at next boot (internal/persist).
//
// A capacity <= 0 disables caching entirely (every Get is a miss, Put is a
// no-op) while still counting misses, so /v1/stats stays meaningful when
// the operator runs uncached benchmarks.
type Store struct {
	shards   []*shard
	mask     int
	capacity int // total across shards (as configured)
	log      *persist.Log
}

// Store geometry defaults. Shard count is rounded to a power of two and
// never exceeds the entry capacity, so tiny test caches (capacity 2) don't
// shatter into 16 one-slot shards.
const (
	defaultShards    = 16
	maxShards        = 256
	defaultPinThresh = 8
)

type shard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used; pinned entries absent
	items     map[string]*storeEntry
	pinned    int
	maxPinned int
	pinThresh uint64

	hits      uint64
	misses    uint64
	evictions uint64

	flights map[string]*flight
}

type storeEntry struct {
	key   string
	value []byte
	hits  uint64
	el    *list.Element // nil once pinned
}

// StoreConfig sizes a Store. Zero values select defaults.
type StoreConfig struct {
	// Capacity is the total entry budget across all shards; <= 0 disables
	// caching.
	Capacity int
	// Shards is the desired shard count; it is rounded up to a power of
	// two, clamped to [1, 256], and halved until it does not exceed
	// Capacity. 0 selects 16.
	Shards int
	// PinThreshold is the hit count that pins an entry past eviction;
	// <= 0 selects 8. Pins are capped at a quarter of each shard.
	PinThreshold int
}

// NewStore builds the sharded store.
func NewStore(cfg StoreConfig) *Store {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so the shard pick is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	n = pow
	if cfg.Capacity > 0 {
		for n > 1 && n > cfg.Capacity {
			n >>= 1
		}
	}
	pinThresh := cfg.PinThreshold
	if pinThresh <= 0 {
		pinThresh = defaultPinThresh
	}
	perShard := 0
	if cfg.Capacity > 0 {
		perShard = (cfg.Capacity + n - 1) / n
	}
	st := &Store{
		shards:   make([]*shard, n),
		mask:     n - 1,
		capacity: cfg.Capacity,
	}
	for i := range st.shards {
		maxPinned := perShard / 4
		if maxPinned < 1 {
			maxPinned = 1
		}
		st.shards[i] = &shard{
			capacity:  perShard,
			ll:        list.New(),
			items:     make(map[string]*storeEntry),
			maxPinned: maxPinned,
			pinThresh: uint64(pinThresh),
			flights:   make(map[string]*flight),
		}
	}
	return st
}

// SetPersist attaches a warm-start log: subsequent Puts append to it. Call
// before serving; the store does not lock around the pointer.
func (st *Store) SetPersist(l *persist.Log) { st.log = l }

// Persist returns the attached warm-start log (nil when persistence is off).
func (st *Store) Persist() *persist.Log { return st.log }

// shardFor picks the shard from the key's leading hex byte. Cache keys are
// sha256 hex digests, so the leading byte is uniform; anything that isn't
// hex falls back to an FNV-1a fold of the whole key.
func (st *Store) shardFor(key string) *shard {
	if st.mask == 0 {
		return st.shards[0]
	}
	if len(key) >= 2 {
		hi, ok1 := hexNibble(key[0])
		lo, ok2 := hexNibble(key[1])
		if ok1 && ok2 {
			return st.shards[int(hi<<4|lo)&st.mask]
		}
	}
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return st.shards[int(h)&st.mask]
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Get returns the cached bytes for key, refreshes its recency, and
// promotes it to pinned once it crosses the shard's hit threshold. The
// returned slice is shared: callers must treat it as read-only.
func (st *Store) Get(key string) ([]byte, bool) {
	sh := st.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.get(key)
}

// get is the shard-locked body of Get.
func (sh *shard) get(key string) ([]byte, bool) {
	e, ok := sh.items[key]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	e.hits++
	if e.el != nil {
		if e.hits >= sh.pinThresh && sh.pinned < sh.maxPinned {
			// Hot key: leave the LRU list for good — eviction scans can
			// no longer touch it.
			sh.ll.Remove(e.el)
			e.el = nil
			sh.pinned++
		} else {
			sh.ll.MoveToFront(e.el)
		}
	}
	return e.value, true
}

// Put stores value under key, evicting the least recently used unpinned
// entry when the shard is full. The store takes ownership of value.
func (st *Store) Put(key string, value []byte) {
	if st.capacity <= 0 {
		return
	}
	sh := st.shardFor(key)
	sh.mu.Lock()
	sh.put(key, value)
	sh.mu.Unlock()
	if st.log != nil {
		st.log.Append(key, value)
	}
}

// put is the shard-locked body of Put.
func (sh *shard) put(key string, value []byte) {
	if e, ok := sh.items[key]; ok {
		e.value = value
		if e.el != nil {
			sh.ll.MoveToFront(e.el)
		}
		return
	}
	e := &storeEntry{key: key, value: value}
	e.el = sh.ll.PushFront(e)
	sh.items[key] = e
	for len(sh.items) > sh.capacity && sh.ll.Len() > 0 {
		oldest := sh.ll.Back()
		victim := oldest.Value.(*storeEntry)
		sh.ll.Remove(oldest)
		delete(sh.items, victim.key)
		sh.evictions++
	}
}

// Seed inserts a warm-start entry without touching the hit/miss counters
// and without echoing it back into the persistence log. Used only at boot,
// replaying internal/persist records in their original order (so the
// newest survive any evictions).
func (st *Store) Seed(key string, value []byte) {
	if st.capacity <= 0 {
		return
	}
	sh := st.shardFor(key)
	sh.mu.Lock()
	sh.put(key, value)
	sh.mu.Unlock()
}

// Len returns the number of cached entries across all shards.
func (st *Store) Len() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the configured total entry budget.
func (st *Store) Capacity() int { return st.capacity }

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// Counters returns the cumulative hit and miss counts across all shards.
func (st *Store) Counters() (hits, misses uint64) {
	for _, sh := range st.shards {
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// ShardCounters is one shard's point-in-time view, as exported by
// /v1/stats and /metrics.
type ShardCounters struct {
	Entries   int
	Pinned    int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// ShardStats snapshots every shard.
func (st *Store) ShardStats() []ShardCounters {
	out := make([]ShardCounters, len(st.shards))
	for i, sh := range st.shards {
		sh.mu.Lock()
		out[i] = ShardCounters{
			Entries:   len(sh.items),
			Pinned:    sh.pinned,
			Hits:      sh.hits,
			Misses:    sh.misses,
			Evictions: sh.evictions,
		}
		sh.mu.Unlock()
	}
	return out
}

// Evictions returns the total evictions across shards.
func (st *Store) Evictions() uint64 {
	var n uint64
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.evictions
		sh.mu.Unlock()
	}
	return n
}

// PinnedCount returns the total pinned entries across shards.
func (st *Store) PinnedCount() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.pinned
		sh.mu.Unlock()
	}
	return n
}
