package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"codar/api"
	"codar/internal/jobs"
)

// jobStatusOf renders a job snapshot as the wire JobStatus.
func jobStatusOf(snap jobs.Snapshot) api.JobStatus {
	st := api.JobStatus{
		ID:       snap.ID,
		State:    string(snap.State),
		QueuePos: snap.Pos,
		Cache:    snap.Cache,
		Created:  snap.Created.UTC().Format(time.RFC3339Nano),
	}
	if !snap.Started.IsZero() {
		st.Started = snap.Started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		st.Finished = snap.Finished.UTC().Format(time.RFC3339Nano)
	}
	if snap.State == jobs.StateDone {
		st.ResultURL = "/v1/jobs/" + snap.ID + "/result"
	}
	if f := snap.Failure; f != nil {
		st.Error = &api.ErrorBody{Code: f.Code, Message: f.Message}
	}
	return st
}

// jobSvcError maps job-store sentinels to envelope errors.
func jobSvcError(err error) *svcError {
	switch {
	case err == jobs.ErrNotFound:
		return &svcError{status: http.StatusNotFound, code: api.CodeJobNotFound, msg: "no such job"}
	case err == jobs.ErrExpired:
		return &svcError{status: http.StatusGone, code: api.CodeJobExpired, msg: "job result expired; resubmit the request"}
	case err == jobs.ErrNotDone:
		return &svcError{status: http.StatusConflict, code: api.CodeJobNotDone, msg: "job has no result (not done)"}
	case err == jobs.ErrFull:
		return errBusy("job store full (%d resident jobs)", jobs.DefaultCapacity)
	case err == jobs.ErrClosed:
		return errBusy("job store shutting down")
	}
	return errInternal("job store: %v", err)
}

// handleJobs implements POST /v1/jobs: the async twin of POST /v1/map. The
// body is the same MapRequest; the response is 202 with the job's initial
// status and a Location header. Validation that needs no worker slot —
// malformed JSON, bad enums, unknown devices, missing calibration — fails
// synchronously with the same codes as /v1/map, so the queue never holds
// jobs that were doomed at submit time.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, errMethodNotAllowed(http.MethodPost, "/v1/jobs"))
		return
	}
	var req MapRequest
	if serr := decodeJSON(r, &req); serr != nil {
		s.writeError(w, serr)
		return
	}
	if serr := s.checkQuota(r, 1); serr != nil {
		s.writeError(w, serr)
		return
	}
	if _, serr := normalizeRequest(&req); serr != nil {
		s.writeError(w, serr)
		return
	}
	if _, serr := s.resolveDevice(&req); serr != nil {
		s.writeError(w, serr)
		return
	}
	if req.Calibrated {
		dev, _ := s.registry.Resolve(req.Arch)
		if _, ok := s.registry.Calibration(dev.Name); !ok {
			s.writeError(w, errBadRequest("device %q has no calibration; upload one via POST /v1/devices/%s/calibration", dev.Name, req.Arch))
			return
		}
	}
	// The job runs under the server's default mapping deadline (the
	// X-Codard-Timeout header can only tighten it, clamped as on /v1/map),
	// parented on the store's BaseCtx — not on r.Context(): the submitting
	// connection closing must not abort an accepted job.
	d := s.cfg.requestTimeout()
	if h := r.Header.Get(timeoutHeader); h != "" {
		parsed, err := time.ParseDuration(h)
		if err != nil || parsed <= 0 {
			s.writeError(w, errBadRequest("bad %s %q: want a positive Go duration like 500ms or 30s", timeoutHeader, h))
			return
		}
		if max := s.cfg.maxTimeout(); parsed > max {
			parsed = max
		}
		d = parsed
	}
	snap, err := s.jobs.Submit(s.jobRunner(&req, d))
	if err != nil {
		s.writeError(w, jobSvcError(err))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, jobStatusOf(snap))
}

// jobRunner builds the store Runner for one accepted request: the same
// mapBytes pipeline as the synchronous path (so results are byte-identical
// and land in the same result store under the same key), admitted through
// acquireJob, bounded by deadline d, with panics converted to this job's
// 500 instead of taking down the process — job goroutines run outside the
// ServeHTTP recover boundary.
func (s *Server) jobRunner(req *MapRequest, d time.Duration) jobs.Runner {
	return func(ctx context.Context) (body []byte, cache string, failure *jobs.Failure) {
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panics.Inc()
				s.logger.Printf("codard: panic mapping job: %v\n%s", rec, debug.Stack())
				body, cache = nil, ""
				failure = &jobs.Failure{Status: http.StatusInternalServerError, Code: api.CodeInternal, Message: "internal error"}
			}
		}()
		runCtx := ctx
		if d > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		start := time.Now()
		bytes, disposition, serr := s.mapBytesAdmit(runCtx, req, s.acquireJob)
		s.stats.requests.Add(1)
		s.stats.observe(time.Since(start))
		if serr != nil {
			s.stats.countError(serr.status, serr.code)
			return nil, "", &jobs.Failure{Status: serr.status, Code: serr.envelopeCode(), Message: serr.msg}
		}
		return bytes, disposition, nil
	}
}

// handleJobByID dispatches the /v1/jobs/{id}[/result|/events] sub-routes.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	parts := strings.Split(rest, "/")
	switch {
	case len(parts) == 1 && parts[0] != "":
		s.handleJob(w, r, parts[0])
	case len(parts) == 2 && parts[1] == "result":
		s.handleJobResult(w, r, parts[0])
	case len(parts) == 2 && parts[1] == "events":
		s.handleJobEvents(w, r, parts[0])
	default:
		s.writeError(w, errNotFound("unknown path %q (want /v1/jobs/{id}, .../result or .../events)", r.URL.Path))
	}
}

// handleJob implements GET (status) and DELETE (cancel) /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodGet:
		snap, err := s.jobs.Get(id)
		if err != nil {
			s.writeError(w, jobSvcError(err))
			return
		}
		writeJSON(w, http.StatusOK, jobStatusOf(snap))
	case http.MethodDelete:
		snap, err := s.jobs.Cancel(id)
		if err != nil {
			s.writeError(w, jobSvcError(err))
			return
		}
		writeJSON(w, http.StatusOK, jobStatusOf(snap))
	default:
		s.writeError(w, errMethodNotAllowed("GET, DELETE", "/v1/jobs/{id}"))
	}
}

// handleJobResult implements GET /v1/jobs/{id}/result: a done job answers
// the exact bytes the synchronous path would have written (they are the
// same bytes — one pipeline, one cache), with the X-Codard-Cache header
// carrying the job's disposition. A failed job replays its stored failure
// at the original status; queued/running answers 409 job_not_done with a
// Retry-After hint; a TTL-reaped result answers 410 job_expired.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, errMethodNotAllowed(http.MethodGet, "/v1/jobs/{id}/result"))
		return
	}
	body, snap, err := s.jobs.Result(id)
	if err != nil {
		if f, ok := err.(*jobs.Failure); ok {
			status := f.Status
			if status == 0 {
				status = http.StatusInternalServerError
			}
			s.writeError(w, &svcError{status: status, code: f.Code, msg: f.Message})
			return
		}
		serr := jobSvcError(err)
		if serr.code == api.CodeJobNotDone {
			serr.retryAfter = 1
		}
		s.writeError(w, serr)
		return
	}
	if streamQuery(r) {
		s.writeJobResultStream(w, body, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cacheHeader, snap.Cache)
	w.Write(body)
}

// handleJobEvents implements GET /v1/jobs/{id}/events: a Server-Sent
// Events stream of the job's status. The current state arrives as the
// first event, each transition follows, and the stream ends after the
// terminal state (clients needing the result then fetch .../result). The
// client disconnecting or the server draining ends the stream early.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		s.writeError(w, errMethodNotAllowed(http.MethodGet, "/v1/jobs/{id}/events"))
		return
	}
	ch, unsub, err := s.jobs.Subscribe(id)
	if err != nil {
		s.writeError(w, jobSvcError(err))
		return
	}
	defer unsub()
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, errInternal("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		select {
		case snap, open := <-ch:
			if !open {
				return
			}
			st := jobStatusOf(snap)
			body, err := json.Marshal(st)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: status\ndata: %s\n\n", body)
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
