package verify

import (
	"strings"
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
	"codar/internal/sabre"
)

func TestCompliance(t *testing.T) {
	dev := arch.Linear(4)
	good := circuit.New(4).H(0).CX(0, 1).CX(2, 3)
	if err := Compliance(good, dev); err != nil {
		t.Errorf("compliant circuit rejected: %v", err)
	}
	bad := circuit.New(4).CX(0, 3)
	if err := Compliance(bad, dev); err == nil {
		t.Error("uncoupled CX accepted")
	}
	wide := circuit.New(9)
	if err := Compliance(wide, dev); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestEquivalenceIdentity(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).CX(1, 2).T(2)
	l := arch.NewTrivialLayout(3, 3)
	if err := Equivalence(c, c, l); err != nil {
		t.Errorf("identity mapping rejected: %v", err)
	}
}

func TestEquivalenceWithSwap(t *testing.T) {
	// Logical: cx q0,q2 on a 3-qubit line. Physical: swap(1,2); cx(0,1).
	orig := circuit.New(3).CX(0, 2)
	mapped := circuit.New(3).Swap(1, 2).CX(0, 1)
	l := arch.NewTrivialLayout(3, 3)
	if err := Equivalence(orig, mapped, l); err != nil {
		t.Errorf("valid swap realisation rejected: %v", err)
	}
}

func TestEquivalenceDetectsWrongGate(t *testing.T) {
	orig := circuit.New(2).CX(0, 1)
	mapped := circuit.New(2).CX(1, 0) // reversed control/target
	l := arch.NewTrivialLayout(2, 2)
	if err := Equivalence(orig, mapped, l); err == nil {
		t.Error("wrong orientation accepted")
	}
}

func TestEquivalenceDetectsMissingGate(t *testing.T) {
	orig := circuit.New(2).H(0).CX(0, 1)
	mapped := circuit.New(2).H(0)
	l := arch.NewTrivialLayout(2, 2)
	if err := Equivalence(orig, mapped, l); err == nil {
		t.Error("dropped gate accepted")
	}
}

func TestEquivalenceDetectsIllegalReorder(t *testing.T) {
	// h then t on the same qubit do not commute; swapping them is invalid.
	orig := circuit.New(1).H(0).T(0)
	mapped := circuit.New(1).T(0).H(0)
	l := arch.NewTrivialLayout(1, 1)
	if err := Equivalence(orig, mapped, l); err == nil {
		t.Error("non-commuting reorder accepted")
	}
}

func TestEquivalenceAllowsCommutingReorder(t *testing.T) {
	// cx q1,q3 and cx q2,q3 commute (shared target): either order is fine.
	orig := circuit.New(4).CX(1, 3).CX(2, 3)
	mapped := circuit.New(4).CX(2, 3).CX(1, 3)
	l := arch.NewTrivialLayout(4, 4)
	if err := Equivalence(orig, mapped, l); err != nil {
		t.Errorf("commuting reorder rejected: %v", err)
	}
}

func TestEquivalenceUnoccupiedQubit(t *testing.T) {
	orig := circuit.New(1).H(0)
	mapped := circuit.New(3).H(2) // physical qubit 2 hosts no logical qubit
	l := arch.NewTrivialLayout(1, 3)
	if err := Equivalence(orig, mapped, l); err == nil {
		t.Error("gate on unoccupied physical qubit accepted")
	}
}

func TestStatevectorIdentity(t *testing.T) {
	c := circuit.New(3).H(0).CX(0, 1).T(1).CX(1, 2)
	l := arch.NewTrivialLayout(3, 3)
	if err := Statevector(c, c, l, 1e-9); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
}

func TestStatevectorCatchesSemanticChange(t *testing.T) {
	orig := circuit.New(2).H(0).CX(0, 1)
	bad := circuit.New(2).H(0).CZ(0, 1)
	l := arch.NewTrivialLayout(2, 2)
	if err := Statevector(orig, bad, l, 1e-9); err == nil {
		t.Error("semantically different circuit accepted")
	}
}

func TestStatevectorWithFinalPermutation(t *testing.T) {
	// swap(0,1) moves logical 0 to physical 1; final layout reflects it.
	orig := circuit.New(2).X(0)
	mapped := circuit.New(2).X(0).Swap(0, 1)
	final, err := arch.NewLayout([]int{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Statevector(orig, mapped, final, 1e-9); err != nil {
		t.Errorf("permuted realisation rejected: %v", err)
	}
	// With the WRONG final layout the check must fail.
	wrong := arch.NewTrivialLayout(2, 2)
	if err := Statevector(orig, mapped, wrong, 1e-9); err == nil {
		t.Error("wrong final layout accepted")
	}
}

func TestStatevectorAncillasMustStayZero(t *testing.T) {
	orig := circuit.New(1).H(0)
	mapped := circuit.New(2).H(0).X(1) // pollutes the ancilla
	final := arch.NewTrivialLayout(1, 2)
	if err := Statevector(orig, mapped, final, 1e-9); err == nil {
		t.Error("polluted ancilla accepted")
	}
}

func TestStatevectorSizeLimit(t *testing.T) {
	big := circuit.New(StatevectorMaxQubits + 1)
	if err := Statevector(big, big, arch.NewTrivialLayout(1, StatevectorMaxQubits+1), 1e-9); err == nil {
		t.Error("oversized statevector accepted")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestCODAROutputsVerify is the keystone integration property: CODAR's
// output passes all three checks on a range of devices.
func TestCODAROutputsVerify(t *testing.T) {
	devices := []*arch.Device{
		arch.Linear(5), arch.Ring(6), arch.Grid("g", 3, 3), arch.IBMQ5(),
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		qubits := dev.NumQubits
		if qubits > 5 {
			qubits = 5
		}
		c := randCircuit(seed, qubits, 30)
		res, err := core.Remap(c, dev, nil, core.Options{})
		if err != nil {
			t.Logf("remap: %v", err)
			return false
		}
		if err := Full(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSABREOutputsVerify: the baseline passes the same checks.
func TestSABREOutputsVerify(t *testing.T) {
	devices := []*arch.Device{
		arch.Linear(5), arch.Ring(6), arch.Grid("g", 3, 3),
	}
	f := func(seed int64) bool {
		dev := devices[int(uint64(seed)%uint64(len(devices)))]
		c := randCircuit(seed, 5, 30)
		res, err := sabre.Remap(c, dev, nil, sabre.Options{})
		if err != nil {
			t.Logf("remap: %v", err)
			return false
		}
		if err := Full(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCODARWithSabreInitialLayoutVerifies mirrors the paper's actual
// experimental configuration (shared reverse-traversal initial mapping).
func TestCODARWithSabreInitialLayoutVerifies(t *testing.T) {
	dev := arch.IBMQ5()
	c := randCircuit(9, 5, 40)
	l, err := sabre.InitialLayout(c, dev, 0, sabre.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Remap(c, dev, l, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Full(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
		t.Error(err)
	}
}

// randCircuit builds a deterministic random lowered circuit.
func randCircuit(seed int64, qubits, gates int) *circuit.Circuit {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func(mod int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(mod))
	}
	c := circuit.New(qubits)
	for i := 0; i < gates; i++ {
		switch next(6) {
		case 0, 1:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CX(a, b)
		case 2:
			c.H(next(qubits))
		case 3:
			c.T(next(qubits))
		case 4:
			a := next(qubits)
			b := next(qubits)
			if a == b {
				b = (b + 1) % qubits
			}
			c.CZ(a, b)
		default:
			c.RZ(float64(next(9))*0.125, next(qubits))
		}
	}
	return c
}
