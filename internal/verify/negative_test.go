package verify

// Negative fuzz tests: the verifier must CATCH corrupted mappings, not
// just accept correct ones. Each mutation takes a valid CODAR output and
// injects a realistic compiler bug (dropped gate, duplicated gate, wrong
// operand, illegally reordered pair, forged swap); at least one of the
// checks must then fail.

import (
	"testing"
	"testing/quick"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/core"
)

// corrupt applies mutation k to a copy of the mapped circuit; returns nil
// when the mutation is inapplicable (e.g. nothing to drop).
func corrupt(mapped *circuit.Circuit, k, pick int) *circuit.Circuit {
	out := mapped.Clone()
	if len(out.Gates) == 0 {
		return nil
	}
	i := pick % len(out.Gates)
	switch k {
	case 0: // drop a non-swap gate
		for off := 0; off < len(out.Gates); off++ {
			j := (i + off) % len(out.Gates)
			if out.Gates[j].Op != circuit.OpSwap {
				out.Gates = append(out.Gates[:j], out.Gates[j+1:]...)
				return out
			}
		}
		return nil
	case 1: // duplicate a non-swap, non-idempotent-safe gate
		for off := 0; off < len(out.Gates); off++ {
			j := (i + off) % len(out.Gates)
			if out.Gates[j].Op != circuit.OpSwap {
				g := out.Gates[j].Clone()
				out.Gates = append(out.Gates[:j+1], append([]circuit.Gate{g}, out.Gates[j+1:]...)...)
				return out
			}
		}
		return nil
	case 2: // flip a CX orientation
		for off := 0; off < len(out.Gates); off++ {
			j := (i + off) % len(out.Gates)
			if out.Gates[j].Op == circuit.OpCX {
				g := out.Gates[j].Clone()
				g.Qubits[0], g.Qubits[1] = g.Qubits[1], g.Qubits[0]
				out.Gates[j] = g
				return out
			}
		}
		return nil
	case 3: // swap two adjacent non-commuting gates
		for off := 0; off+1 < len(out.Gates); off++ {
			j := (i + off) % (len(out.Gates) - 1)
			a, b := out.Gates[j], out.Gates[j+1]
			if !circuit.Commute(a, b) {
				out.Gates[j], out.Gates[j+1] = b, a
				return out
			}
		}
		return nil
	default: // inject a spurious extra SWAP on some coupled pair
		for off := 0; off < len(out.Gates); off++ {
			j := (i + off) % len(out.Gates)
			if out.Gates[j].Op.TwoQubit() {
				g := circuit.New2Q(circuit.OpSwap, out.Gates[j].Qubits[0], out.Gates[j].Qubits[1])
				out.Gates = append(out.Gates[:j], append([]circuit.Gate{g}, out.Gates[j:]...)...)
				return out
			}
		}
		return nil
	}
}

func TestVerifierCatchesCorruptions(t *testing.T) {
	dev := arch.Grid("g", 3, 3)
	f := func(seed int64) bool {
		c := randCircuit(seed, 6, 30)
		res, err := core.Remap(c, dev, nil, core.Options{})
		if err != nil {
			t.Logf("remap: %v", err)
			return false
		}
		// Sanity: the untouched output verifies.
		if err := Full(c, res.Circuit, dev, res.InitialLayout, res.FinalLayout); err != nil {
			t.Logf("clean output rejected: %v", err)
			return false
		}
		pick := int(uint64(seed) >> 33 % 1024)
		for k := 0; k < 5; k++ {
			bad := corrupt(res.Circuit, k, pick)
			if bad == nil {
				continue
			}
			if err := Full(c, bad, dev, res.InitialLayout, res.FinalLayout); err == nil {
				t.Logf("mutation %d slipped through (seed %d)", k, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVerifierCatchesWrongInitialLayout(t *testing.T) {
	dev := arch.Grid("g", 3, 3)
	c := randCircuit(3, 6, 25)
	res, err := core.Remap(c, dev, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Claiming a different initial layout must break equivalence (the
	// un-mapping produces the wrong logical gates).
	wrong := res.InitialLayout.Clone()
	wrong.SwapPhysical(0, 5)
	if err := Equivalence(c, res.Circuit, wrong); err == nil {
		// A swap between two unused physical qubits would be harmless; 0
		// and 5 host logical qubits in the trivial 6-on-9 layout, so this
		// must fail.
		t.Error("wrong initial layout accepted")
	}
}
