// Package verify checks that a remapped circuit is a faithful, hardware-
// compliant implementation of its source circuit. Three independent checks
// are provided, in increasing strength and cost:
//
//   - Compliance: every two-qubit gate acts on a coupled physical pair.
//   - Equivalence: tracking the logical↔physical permutation through the
//     inserted SWAPs, the output un-maps to a commutation-respecting
//     reordering of the input gate sequence.
//   - Statevector: on small devices, the output's final state equals the
//     input's (tensored with ancilla |0>s) up to the final-layout qubit
//     relabelling and a global phase.
//
// Both the CODAR remapper and the SABRE baseline are validated with the
// same machinery.
package verify

import (
	"fmt"

	"codar/internal/arch"
	"codar/internal/circuit"
	"codar/internal/sim"
)

// Compliance verifies that every two-qubit unitary in c addresses a
// coupled pair of dev, i.e. the circuit is directly executable.
func Compliance(c *circuit.Circuit, dev *arch.Device) error {
	if c.NumQubits > dev.NumQubits {
		return fmt.Errorf("verify: circuit spans %d qubits, device %s has %d", c.NumQubits, dev.Name, dev.NumQubits)
	}
	for i, g := range c.Gates {
		if g.Op.TwoQubit() && !dev.Adjacent(g.Qubits[0], g.Qubits[1]) {
			return fmt.Errorf("verify: gate %d (%s) addresses uncoupled qubits on %s", i, g, dev.Name)
		}
	}
	return nil
}

// Equivalence verifies that mapped (a physical circuit with SWAPs) encodes
// exactly the gates of original (a logical circuit): un-mapping every
// non-SWAP gate through the layout evolved by the SWAPs must yield the
// original gate multiset in an order that only reorders commuting gates.
//
// The check is sound against the commutation rules of circuit.Commute
// (themselves cross-validated against explicit unitaries in internal/sim).
func Equivalence(original, mapped *circuit.Circuit, initial *arch.Layout) error {
	if initial == nil {
		return fmt.Errorf("verify: nil initial layout")
	}
	layout := initial.Clone()

	// Per-qubit queues of unmatched original gate indices.
	queues := make([][]int, original.NumQubits)
	for i, g := range original.Gates {
		for _, q := range g.Qubits {
			queues[q] = append(queues[q], i)
		}
	}
	heads := make([]int, original.NumQubits) // lazy-deletion cursors
	matched := make([]bool, original.Len())
	nMatched := 0

	for mi, g := range mapped.Gates {
		if g.Op == circuit.OpSwap {
			layout.SwapPhysical(g.Qubits[0], g.Qubits[1])
			continue
		}
		lg := g.Remap(func(p int) int { return layout.Log(p) })
		for _, q := range lg.Qubits {
			if q < 0 {
				return fmt.Errorf("verify: mapped gate %d (%s) touches an unoccupied physical qubit", mi, g)
			}
			if q >= original.NumQubits {
				return fmt.Errorf("verify: mapped gate %d (%s) un-maps to out-of-range logical %d", mi, g, q)
			}
		}
		// Walk the unmatched original gates on lg's qubits in program
		// order; the first equal gate matches, and every unmatched gate
		// skipped on the way must commute with lg.
		if err := matchGate(original, lg, queues, heads, matched); err != nil {
			return fmt.Errorf("verify: mapped gate %d (%s as %s): %w", mi, g, lg, err)
		}
		nMatched++
	}
	if nMatched != original.Len() {
		return fmt.Errorf("verify: mapped circuit realises %d of %d original gates", nMatched, original.Len())
	}
	return nil
}

// matchGate consumes the earliest unmatched original gate equal to lg,
// requiring every unmatched earlier gate sharing a qubit with lg to commute
// with it.
func matchGate(original *circuit.Circuit, lg circuit.Gate, queues [][]int, heads []int, matched []bool) error {
	// Merge the per-qubit queues in ascending index order.
	cursors := make([]int, len(lg.Qubits))
	for k, q := range lg.Qubits {
		cursors[k] = heads[q]
	}
	for {
		// Find the smallest unmatched index across lg's qubit queues.
		best, bestK := -1, -1
		for k, q := range lg.Qubits {
			list := queues[q]
			c := cursors[k]
			for c < len(list) && matched[list[c]] {
				c++
			}
			cursors[k] = c
			if c < len(list) && (best < 0 || list[c] < best) {
				best, bestK = list[c], k
			}
		}
		if best < 0 {
			return fmt.Errorf("no matching original gate remains")
		}
		og := original.Gates[best]
		if og.Equal(lg) {
			matched[best] = true
			// Advance lazy heads where possible.
			for _, q := range lg.Qubits {
				list := queues[q]
				for heads[q] < len(list) && matched[list[heads[q]]] {
					heads[q]++
				}
			}
			return nil
		}
		if !circuit.Commute(og, lg) {
			return fmt.Errorf("would reorder past non-commuting gate %d (%s)", best, og)
		}
		cursors[bestK]++
	}
}

// StatevectorMaxQubits bounds the device size accepted by Statevector
// (2^20 amplitudes = 16 MiB per state).
const StatevectorMaxQubits = 20

// Statevector verifies full semantic equality on small devices: simulating
// the mapped circuit over all physical qubits, relabelling qubits by the
// final layout, the result must equal original's state tensored with
// ancilla |0>s, up to global phase (fidelity within eps of 1).
//
// final is the layout after the mapped circuit's SWAPs (e.g.
// Result.FinalLayout); measurements are skipped on both sides; circuits
// containing resets are rejected.
func Statevector(original, mapped *circuit.Circuit, final *arch.Layout, eps float64) error {
	if mapped.NumQubits > StatevectorMaxQubits {
		return fmt.Errorf("verify: %d qubits exceed the statevector limit %d", mapped.NumQubits, StatevectorMaxQubits)
	}
	origState, err := runUnitary(original, original.NumQubits)
	if err != nil {
		return fmt.Errorf("verify: original: %w", err)
	}
	mapState, err := runUnitary(mapped, mapped.NumQubits)
	if err != nil {
		return fmt.Errorf("verify: mapped: %w", err)
	}
	// Relabel physical qubits to logical order using the final layout:
	// logical q reads physical final.Phys(q); ancillas take the leftover
	// physical qubits in ascending order.
	perm := make([]int, mapped.NumQubits)
	used := make([]bool, mapped.NumQubits)
	for q := 0; q < final.NumLogical(); q++ {
		perm[q] = final.Phys(q)
		used[final.Phys(q)] = true
	}
	next := final.NumLogical()
	for p := 0; p < mapped.NumQubits; p++ {
		if !used[p] {
			perm[next] = p
			next++
		}
	}
	relabelled, err := mapState.PermuteQubits(perm)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	// Expected state: original ⊗ |0...0> over the same width.
	expect := sim.MustNewState(mapped.NumQubits)
	expect.SetAmplitude(0, 0)
	for i := 0; i < origState.Len(); i++ {
		expect.SetAmplitude(i, origState.Amplitude(i))
	}
	if !relabelled.EqualUpToPhase(expect, eps) {
		return fmt.Errorf("verify: statevector mismatch: fidelity %g", relabelled.Fidelity(expect))
	}
	return nil
}

// runUnitary simulates the unitary part of c over width qubits, skipping
// measurements and rejecting resets.
func runUnitary(c *circuit.Circuit, width int) (*sim.State, error) {
	st, err := sim.NewState(width)
	if err != nil {
		return nil, err
	}
	for i, g := range c.Gates {
		switch g.Op {
		case circuit.OpMeasure:
			continue
		case circuit.OpReset:
			return nil, fmt.Errorf("gate %d: reset is not supported by statevector verification", i)
		}
		if err := st.Apply(g); err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return st, nil
}

// Full runs Compliance and Equivalence always, plus Statevector when the
// device is small enough. It is the one-call validation used by the
// experiment harnesses and integration tests.
func Full(original, mapped *circuit.Circuit, dev *arch.Device, initial, final *arch.Layout) error {
	if err := Compliance(mapped, dev); err != nil {
		return err
	}
	if err := Equivalence(original, mapped, initial); err != nil {
		return err
	}
	if dev.NumQubits <= StatevectorMaxQubits && final != nil {
		hasReset := false
		for _, g := range original.Gates {
			if g.Op == circuit.OpReset {
				hasReset = true
				break
			}
		}
		if !hasReset {
			return Statevector(original, mapped, final, 1e-6)
		}
	}
	return nil
}
