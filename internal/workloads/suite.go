package workloads

import (
	"fmt"
	"sort"
	"sync"

	"codar/internal/circuit"
)

// Benchmark is one suite entry: a named, deterministic circuit generator.
type Benchmark struct {
	// Name is the stable identifier used in reports.
	Name string
	// Qubits is the circuit width (before mapping).
	Qubits int
	// Family groups related benchmarks for reporting.
	Family string
	build  func() *circuit.Circuit
}

// Circuit builds the benchmark circuit, lowered to the base gate set the
// remappers accept. Builders are deterministic: the same Benchmark always
// produces the same circuit.
func (b Benchmark) Circuit() *circuit.Circuit {
	c := circuit.Decompose(b.build())
	c.Name = b.Name
	return c
}

// Raw builds the benchmark circuit without lowering (compound gates kept).
func (b Benchmark) Raw() *circuit.Circuit { return b.build() }

func entry(family string, build func() *circuit.Circuit) Benchmark {
	c := build() // probe for name/width; builders are cheap and pure
	return Benchmark{Name: c.Name, Qubits: c.NumQubits, Family: family, build: build}
}

// Suite returns the 71-benchmark evaluation suite: 68 circuits using
// 3–16 qubits plus three 36-qubit programs, mirroring the paper's size
// envelope ("from using 3 qubits up to using 36 qubits and about 30,000
// gates"). Entries are ordered by qubit count then name, the order Fig 8
// plots them in.
//
// The entry metadata comes from probing every builder once, which means
// constructing all 71 circuits — done a single time per process; callers
// get a fresh slice over the shared immutable entries.
func Suite() []Benchmark {
	suiteOnce.Do(func() { suiteCache = buildSuite() })
	out := make([]Benchmark, len(suiteCache))
	copy(out, suiteCache)
	return out
}

var (
	suiteOnce  sync.Once
	suiteCache []Benchmark
)

func buildSuite() []Benchmark {
	var s []Benchmark
	add := func(family string, build func() *circuit.Circuit) {
		s = append(s, entry(family, build))
	}

	// GHZ state preparations (5).
	for _, n := range []int{3, 5, 8, 12, 16} {
		n := n
		add("ghz", func() *circuit.Circuit { return GHZ(n) })
	}
	// Quantum Fourier transforms (6).
	for _, n := range []int{4, 5, 8, 10, 13, 16} {
		n := n
		add("qft", func() *circuit.Circuit { return QFT(n) })
	}
	// Bernstein–Vazirani (5): width = inputs + 1 ancilla.
	for _, n := range []int{4, 7, 9, 12, 15} {
		n := n
		add("bv", func() *circuit.Circuit { return BV(n, 0xB5B5B5B5>>uint(16-n)|1) })
	}
	// W states (4).
	for _, n := range []int{4, 8, 12, 16} {
		n := n
		add("wstate", func() *circuit.Circuit { return WState(n) })
	}
	// Cuccaro ripple-carry adders (5): width = 2*bits + 2.
	for _, bits := range []int{1, 2, 4, 6, 7} {
		bits := bits
		add("adder", func() *circuit.Circuit { return CuccaroAdder(bits) })
	}
	// Grover search (4).
	for _, cfg := range [][2]int{{3, 1}, {4, 2}, {5, 2}, {6, 3}} {
		n, it := cfg[0], cfg[1]
		add("grover", func() *circuit.Circuit { return Grover(n, it) })
	}
	// Deutsch–Jozsa (4): one constant + three balanced.
	add("dj", func() *circuit.Circuit { return DeutschJozsa(7, 0) })
	for _, n := range []int{7, 11, 15} {
		n := n
		add("dj", func() *circuit.Circuit { return DeutschJozsa(n, (1<<uint(n))-1) })
	}
	// Simon's algorithm (4): width = 2n.
	for _, n := range []int{3, 4, 6, 8} {
		n := n
		add("simon", func() *circuit.Circuit { return Simon(n, 0b101%(1<<uint(n))|1) })
	}
	// QAOA MaxCut (4).
	for _, cfg := range [][2]int{{8, 1}, {10, 2}, {12, 2}, {16, 3}} {
		n, p := cfg[0], cfg[1]
		add("qaoa", func() *circuit.Circuit { return QAOAMaxCut(n, p, int64(n*10+p)) })
	}
	// Trotterised Ising evolution (3).
	for _, cfg := range [][2]int{{8, 4}, {12, 6}, {16, 8}} {
		n, steps := cfg[0], cfg[1]
		add("ising", func() *circuit.Circuit { return Ising(n, steps) })
	}
	// Hidden shift (3).
	for _, n := range []int{8, 12, 16} {
		n := n
		add("hshift", func() *circuit.Circuit { return HiddenShift(n, 0x6D%(1<<uint(n))) })
	}
	// RevLib-style reversible netlists (8).
	for _, cfg := range [][3]int{
		{5, 60, 1}, {8, 120, 1}, {8, 200, 2}, {10, 250, 1},
		{12, 400, 1}, {14, 600, 1}, {16, 800, 1}, {16, 1500, 2},
	} {
		n, gates, seed := cfg[0], cfg[1], cfg[2]
		add("revnet", func() *circuit.Circuit { return RevNet(n, gates, int64(seed)) })
	}
	// Unstructured random circuits (6).
	for _, cfg := range [][3]int{
		{5, 100, 40}, {8, 200, 40}, {10, 300, 40},
		{12, 500, 45}, {14, 800, 45}, {16, 1000, 40},
	} {
		n, gates, frac := cfg[0], cfg[1], cfg[2]
		add("random", func() *circuit.Circuit { return Random(n, gates, frac, int64(n+gates)) })
	}
	// Quantum-volume model circuits (4).
	for _, cfg := range [][2]int{{8, 8}, {10, 10}, {12, 12}, {16, 16}} {
		n, d := cfg[0], cfg[1]
		add("qv", func() *circuit.Circuit { return QuantumVolume(n, d, int64(n*d)) })
	}
	// Shift-and-add multipliers (3): width = 3*bits + 2.
	for _, bits := range []int{2, 3, 4} {
		bits := bits
		add("mult", func() *circuit.Circuit { return Multiplier(bits) })
	}

	// The three 36-qubit programs, tested only on Google Q54 Sycamore
	// (the paper excludes them on the 16/20/36-qubit devices).
	add("qft", func() *circuit.Circuit { return QFT(36) })
	add("random", func() *circuit.Circuit { return Random(36, 30000, 45, 36) })
	add("qaoa", func() *circuit.Circuit { return QAOAMaxCut(36, 4, 364) })

	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Qubits != s[j].Qubits {
			return s[i].Qubits < s[j].Qubits
		}
		return s[i].Name < s[j].Name
	})
	return s
}

// SmallSuite returns the 68 benchmarks that fit the 16-qubit IBM Q16 (and
// are the ones the paper runs on Q16, Q20 and the 6×6 grid).
func SmallSuite() []Benchmark {
	var out []Benchmark
	for _, b := range Suite() {
		if b.Qubits <= 16 {
			out = append(out, b)
		}
	}
	return out
}

// FamousSeven returns the seven well-known algorithms used in the Fig 9
// fidelity experiment. All fit a 9-qubit 3×3 grid so that the noisy
// trajectory simulation stays cheap.
func FamousSeven() []Benchmark {
	return []Benchmark{
		entry("qft", func() *circuit.Circuit { return QFT(5) }),
		entry("bv", func() *circuit.Circuit { return BV(5, 0b10110) }),
		entry("ghz", func() *circuit.Circuit { return GHZ(6) }),
		entry("grover", func() *circuit.Circuit { return Grover(4, 1) }),
		entry("dj", func() *circuit.Circuit { return DeutschJozsa(5, 0b11111) }),
		entry("simon", func() *circuit.Circuit { return Simon(3, 0b101) }),
		entry("adder", func() *circuit.Circuit { return CuccaroAdder(2) }),
	}
}

// ByName returns the suite benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}
