package workloads

import (
	"fmt"
	"math"

	"codar/internal/circuit"
)

// Extra generators beyond the 71-benchmark evaluation suite: common
// algorithm families useful for examples, extension studies and user code.

// PhaseEstimation builds quantum phase estimation with counting counting
// qubits plus one eigenstate qubit (width counting+1). The unitary is
// u1(2π·phase) acting on the eigenstate |1>, so the counting register
// ideally reads the binary expansion of phase.
func PhaseEstimation(counting int, phase float64) *circuit.Circuit {
	n := counting + 1
	c := circuit.NewNamed(fmt.Sprintf("qpe_%d", n), n)
	eigen := counting
	c.X(eigen) // |1> is the u1 eigenstate with eigenvalue e^{i 2π phase}
	for i := 0; i < counting; i++ {
		c.H(i)
	}
	// Counting qubit i (binary weight 2^i) accumulates e^{i 2π phase 2^i}.
	for i := 0; i < counting; i++ {
		angle := 2 * math.Pi * phase * math.Pow(2, float64(i))
		c.CP(angle, i, eigen)
	}
	// Inverse QFT on the counting register.
	c.AppendAll(InverseQFT(counting))
	return c
}

// VQEAnsatz builds a hardware-efficient variational ansatz: layers of
// per-qubit ry/rz rotations followed by a CX entangling chain. Angles are
// seeded deterministically.
func VQEAnsatz(n, layers int, seed int64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("vqe_%d_l%d", n, layers), n)
	rng := newXorshift(seed*31 + 17)
	ang := func() float64 { return float64(rng.next(628)) / 100 }
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(ang(), q)
			c.RZ(ang(), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(ang(), q)
	}
	return c
}

// CounterfeitCoin builds the counterfeit-coin-finding circuit over coins
// coins plus one ancilla (a balance qubit), marking coin `fake`.
func CounterfeitCoin(coins, fake int) *circuit.Circuit {
	if fake < 0 || fake >= coins {
		panic("workloads: fake coin index out of range")
	}
	n := coins + 1
	c := circuit.NewNamed(fmt.Sprintf("coin_%d", n), n)
	anc := coins
	for i := 0; i < coins; i++ {
		c.H(i)
	}
	c.X(anc)
	c.H(anc)
	// Balance query: the fake coin flips the balance.
	c.CX(fake, anc)
	for i := 0; i < coins; i++ {
		c.H(i)
	}
	return c
}
