// Package workloads generates the benchmark circuit suite standing in for
// the paper's 71 benchmarks (collected there from IBM Qiskit's GitHub,
// RevLib, ScaffCC, Quipper and the SABRE artifact — none of which are
// redistributable here). The generators cover the same families and size
// envelope: 3–36 qubits, up to ~30,000 gates, with 68 circuits of at most
// 16 qubits plus three 36-qubit programs (§V, "Benchmarks"). See DESIGN.md
// §2 for the substitution argument.
package workloads

import (
	"fmt"
	"math"

	"codar/internal/circuit"
)

// QFT builds the n-qubit quantum Fourier transform with controlled-phase
// rotations (ScaffCC-style, as in the paper's Fig 2 example). With qubit 0
// as the least-significant bit, the circuit implements the exact DFT
// |x> -> (1/√N) Σ_k e^{2πixk/N} |k> (validated against the DFT matrix in
// the tests).
func QFT(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("qft_%d", n), n)
	for j := n - 1; j >= 0; j-- {
		c.H(j)
		for m := 0; m < j; m++ {
			c.CP(math.Pi/math.Pow(2, float64(j-m)), m, j)
		}
	}
	// Final bit-reversal swaps.
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	return c
}

// InverseQFT builds the exact inverse of QFT(n).
func InverseQFT(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("iqft_%d", n), n)
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	for j := 0; j < n; j++ {
		for m := j - 1; m >= 0; m-- {
			c.CP(-math.Pi/math.Pow(2, float64(j-m)), m, j)
		}
		c.H(j)
	}
	return c
}

// GHZ builds the n-qubit Greenberger–Horne–Zeilinger state preparation.
func GHZ(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("ghz_%d", n), n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	return c
}

// BV builds the Bernstein–Vazirani circuit over n input qubits plus one
// ancilla, for the given secret bit-mask.
func BV(n int, secret uint64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("bv_%d", n+1), n+1)
	anc := n
	c.X(anc)
	c.H(anc)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for i := 0; i < n; i++ {
		if secret&(1<<uint(i)) != 0 {
			c.CX(i, anc)
		}
	}
	for i := 0; i < n; i++ {
		c.H(i)
	}
	return c
}

// WState prepares the n-qubit W state using cascaded controlled rotations
// (each controlled-RY expanded into the standard 2-CX form).
func WState(n int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("wstate_%d", n), n)
	c.X(0)
	for k := 1; k < n; k++ {
		// Pass (n-k)/(n-k+1) of the remaining excitation weight forward,
		// keeping 1/n at qubit k-1.
		theta := 2 * math.Asin(math.Sqrt(float64(n-k)/float64(n-k+1)))
		cry(c, theta, k-1, k)
		c.CX(k, k-1)
	}
	return c
}

// cry appends a controlled-RY(theta) with control a and target b.
func cry(c *circuit.Circuit, theta float64, a, b int) {
	c.RY(theta/2, b)
	c.CX(a, b)
	c.RY(-theta/2, b)
	c.CX(a, b)
}

// CuccaroAdder builds the CDKM ripple-carry adder on two bits-wide
// registers: qubits [cin, a0, b0, a1, b1, ..., cout], 2*bits + 2 total.
func CuccaroAdder(bits int) *circuit.Circuit {
	n := 2*bits + 2
	c := circuit.NewNamed(fmt.Sprintf("adder_%d", bits), n)
	cin := 0
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }
	cout := n - 1
	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) {
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}
	maj(cin, b(0), a(0))
	for i := 1; i < bits; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// Grover builds a Grover search over n qubits with the given number of
// iterations, marking the all-ones state. Multi-controlled Z larger than
// CCZ uses an ancilla ladder, adding max(n-2, 0) work qubits.
func Grover(n, iterations int) *circuit.Circuit {
	anc := 0
	if n > 3 {
		anc = n - 2
	}
	c := circuit.NewNamed(fmt.Sprintf("grover_%d", n), n+anc)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for it := 0; it < iterations; it++ {
		mcz(c, n) // oracle: phase-flip |1...1>
		for i := 0; i < n; i++ {
			c.H(i)
			c.X(i)
		}
		mcz(c, n) // diffusion core
		for i := 0; i < n; i++ {
			c.X(i)
			c.H(i)
		}
	}
	return c
}

// mcz applies a multi-controlled Z over qubits [0, n) of c, using the
// ancilla qubits [n, ...) for n > 3 via a CCX ladder (computed and
// uncomputed around a CZ).
func mcz(c *circuit.Circuit, n int) {
	switch n {
	case 1:
		c.Z(0)
		return
	case 2:
		c.CZ(0, 1)
		return
	case 3:
		// CCZ = H(t) CCX H(t).
		c.H(2)
		c.CCX(0, 1, 2)
		c.H(2)
		return
	}
	// Ladder: anc[0] = q0 AND q1; anc[i] = anc[i-1] AND q_{i+1}.
	anc := n
	c.CCX(0, 1, anc)
	for i := 2; i < n-1; i++ {
		c.CCX(i, anc+i-2, anc+i-1)
	}
	c.CZ(anc+n-3, n-1)
	for i := n - 2; i >= 2; i-- {
		c.CCX(i, anc+i-2, anc+i-1)
	}
	c.CCX(0, 1, anc)
}

// DeutschJozsa builds the Deutsch–Jozsa circuit over n inputs plus an
// ancilla. A zero mask yields a constant oracle; otherwise the oracle is
// balanced on the masked bits.
func DeutschJozsa(n int, mask uint64) *circuit.Circuit {
	kind := "balanced"
	if mask == 0 {
		kind = "constant"
	}
	c := circuit.NewNamed(fmt.Sprintf("dj_%s_%d", kind, n+1), n+1)
	anc := n
	c.X(anc)
	c.H(anc)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	if mask == 0 {
		c.X(anc) // constant-1 oracle
	} else {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c.CX(i, anc)
			}
		}
	}
	for i := 0; i < n; i++ {
		c.H(i)
	}
	return c
}

// Simon builds Simon's algorithm over n input qubits and n output qubits
// (2n total) for the given secret mask.
func Simon(n int, mask uint64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("simon_%d", 2*n), 2*n)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	// Oracle: copy x to the output register, then smear the secret onto
	// outputs controlled by the first set bit of the mask.
	for i := 0; i < n; i++ {
		c.CX(i, n+i)
	}
	first := -1
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			first = i
			break
		}
	}
	if first >= 0 {
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				c.CX(first, n+j)
			}
		}
	}
	for i := 0; i < n; i++ {
		c.H(i)
	}
	return c
}

// QAOAMaxCut builds a p-layer QAOA MaxCut ansatz over a seeded random
// 3-regular-ish graph on n vertices.
func QAOAMaxCut(n, p int, seed int64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("qaoa_%d_p%d", n, p), n)
	edges := randomGraph(n, seed)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	rng := newXorshift(seed)
	for layer := 0; layer < p; layer++ {
		gamma := float64(rng.next(628)) / 100
		beta := float64(rng.next(314)) / 100
		for _, e := range edges {
			c.RZZ(gamma, e[0], e[1])
		}
		for i := 0; i < n; i++ {
			c.RX(beta, i)
		}
	}
	return c
}

// randomGraph returns a connected random graph with roughly 1.5n edges.
func randomGraph(n int, seed int64) [][2]int {
	rng := newXorshift(seed*2654435761 + 1)
	var edges [][2]int
	seen := make(map[[2]int]bool)
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, k)
		}
	}
	// Spanning chain guarantees connectivity, then random chords.
	for i := 0; i+1 < n; i++ {
		add(i, i+1)
	}
	for k := 0; k < n/2; k++ {
		add(rng.next(n), rng.next(n))
	}
	return edges
}

// Ising builds a Trotterised 1-D transverse-field Ising evolution over n
// spins for the given number of Trotter steps.
func Ising(n, steps int) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("ising_%d_%d", n, steps), n)
	const j, h = 0.35, 0.7
	for s := 0; s < steps; s++ {
		for i := 0; i+1 < n; i += 2 {
			c.RZZ(2*j, i, i+1)
		}
		for i := 1; i+1 < n; i += 2 {
			c.RZZ(2*j, i, i+1)
		}
		for i := 0; i < n; i++ {
			c.RX(2*h, i)
		}
	}
	return c
}

// HiddenShift builds a bent-function hidden-shift instance over n qubits
// (n even) with the given shift mask, following the CZ-pair construction.
func HiddenShift(n int, shift uint64) *circuit.Circuit {
	if n%2 != 0 {
		panic("workloads: HiddenShift needs an even qubit count")
	}
	c := circuit.NewNamed(fmt.Sprintf("hshift_%d", n), n)
	applyShift := func() {
		for i := 0; i < n; i++ {
			if shift&(1<<uint(i)) != 0 {
				c.X(i)
			}
		}
	}
	f := func() {
		for i := 0; i < n/2; i++ {
			c.CZ(2*i, 2*i+1)
		}
	}
	for i := 0; i < n; i++ {
		c.H(i)
	}
	applyShift()
	f()
	applyShift()
	for i := 0; i < n; i++ {
		c.H(i)
	}
	f()
	for i := 0; i < n; i++ {
		c.H(i)
	}
	return c
}

// RevNet builds a RevLib-style reversible netlist: a seeded random network
// of X, CNOT and Toffoli gates, the gate mix typical of synthesised
// reversible benchmarks (alu, decod, mod5, ...).
func RevNet(n, gates int, seed int64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("revnet_%d_s%d", n, seed), n)
	rng := newXorshift(seed*0x9E3779B9 + 7)
	for k := 0; k < gates; k++ {
		switch rng.next(10) {
		case 0:
			c.X(rng.next(n))
		case 1, 2, 3, 4:
			a := rng.next(n)
			b := (a + 1 + rng.next(n-1)) % n
			c.CX(a, b)
		default:
			if n < 3 {
				a := rng.next(n)
				b := (a + 1 + rng.next(n-1)) % n
				c.CX(a, b)
				continue
			}
			a := rng.next(n)
			b := (a + 1 + rng.next(n-1)) % n
			t := rng.next(n)
			for t == a || t == b {
				t = (t + 1) % n
			}
			c.CCX(a, b, t)
		}
	}
	return c
}

// Random builds an unstructured random circuit with the given two-qubit
// gate fraction (percent).
func Random(n, gates int, cxPercent int, seed int64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("rand_%d_g%d", n, gates), n)
	rng := newXorshift(seed*0x2545F491 + 11)
	for k := 0; k < gates; k++ {
		if rng.next(100) < cxPercent {
			a := rng.next(n)
			b := (a + 1 + rng.next(n-1)) % n
			c.CX(a, b)
		} else {
			switch rng.next(5) {
			case 0:
				c.H(rng.next(n))
			case 1:
				c.T(rng.next(n))
			case 2:
				c.X(rng.next(n))
			case 3:
				c.RZ(float64(rng.next(64))*0.098, rng.next(n))
			default:
				c.S(rng.next(n))
			}
		}
	}
	return c
}

// QuantumVolume builds a quantum-volume-style model circuit: depth layers
// of random two-qubit blocks over a random qubit pairing (each block a
// u3/cx/u3/cx/u3 sandwich approximating a generic SU(4)).
func QuantumVolume(n, depth int, seed int64) *circuit.Circuit {
	c := circuit.NewNamed(fmt.Sprintf("qv_%d_d%d", n, depth), n)
	rng := newXorshift(seed*0x85EBCA6B + 13)
	ang := func() float64 { return float64(rng.next(628)) / 100 }
	for layer := 0; layer < depth; layer++ {
		perm := rng.perm(n)
		for i := 0; i+1 < n; i += 2 {
			a, b := perm[i], perm[i+1]
			c.U3(ang(), ang(), ang(), a)
			c.U3(ang(), ang(), ang(), b)
			c.CX(a, b)
			c.U3(ang(), ang(), ang(), a)
			c.U3(ang(), ang(), ang(), b)
			c.CX(b, a)
			c.U3(ang(), ang(), ang(), a)
			c.U3(ang(), ang(), ang(), b)
		}
	}
	return c
}

// Multiplier builds a shift-and-add multiplier skeleton over 3*bits+2
// qubits: bits controlled Cuccaro-style adder passes.
func Multiplier(bits int) *circuit.Circuit {
	n := 3*bits + 2
	c := circuit.NewNamed(fmt.Sprintf("mult_%d", bits), n)
	// Registers: x[bits], a[bits], b[bits], cin, cout.
	x := func(i int) int { return i }
	a := func(i int) int { return bits + i }
	b := func(i int) int { return 2*bits + i }
	cin := 3 * bits
	cout := 3*bits + 1
	for pass := 0; pass < bits; pass++ {
		ctrl := x(pass)
		// Controlled MAJ/UMA chain (controls folded into Toffolis).
		c.CCX(ctrl, a(0), b(0))
		for i := 1; i < bits; i++ {
			c.CX(a(i), b(i))
			c.CCX(a(i-1), b(i), a(i))
		}
		c.CCX(ctrl, a(bits-1), cout)
		for i := bits - 1; i >= 1; i-- {
			c.CCX(a(i-1), b(i), a(i))
			c.CX(a(i), b(i))
		}
		c.CCX(ctrl, a(0), b(0))
		c.CX(cin, b(0))
	}
	return c
}

// xorshift is the suite's deterministic RNG (no global state, stdlib-free
// reproducibility across platforms).
type xorshift struct{ s uint64 }

func newXorshift(seed int64) *xorshift {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return &xorshift{s: x}
}

func (x *xorshift) next(mod int) int {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return int(x.s % uint64(mod))
}

// perm returns a random permutation of [0, n).
func (x *xorshift) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.next(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
