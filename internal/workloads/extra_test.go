package workloads

import (
	"math"
	"testing"

	"codar/internal/circuit"
	"codar/internal/sim"
)

func TestPhaseEstimationRecoversPhase(t *testing.T) {
	// phase = 0.375 = 0.011 in binary: 3 counting qubits read it exactly.
	const counting = 3
	const phase = 0.375
	c := PhaseEstimation(counting, phase)
	st, err := sim.Run(circuit.Decompose(c))
	if err != nil {
		t.Fatal(err)
	}
	// Expected counting-register value: phase * 2^counting = 3.
	want := int(phase * math.Pow(2, counting))
	// The eigenstate qubit stays |1> (bit `counting`).
	idx := want | 1<<counting
	if p := st.Probability(idx); p < 0.99 {
		t.Errorf("P(phase register = %d) = %g, want ~1", want, p)
	}
}

func TestPhaseEstimationInexactPhasePeaks(t *testing.T) {
	// A phase without an exact 3-bit expansion still peaks at the nearest
	// value.
	const counting = 3
	c := PhaseEstimation(counting, 0.3) // nearest 3-bit value: 0.25 or 0.375
	st, err := sim.Run(circuit.Decompose(c))
	if err != nil {
		t.Fatal(err)
	}
	best, bestP := -1, 0.0
	for v := 0; v < 1<<counting; v++ {
		if p := st.Probability(v | 1<<counting); p > bestP {
			best, bestP = v, p
		}
	}
	if best != 2 && best != 3 {
		t.Errorf("peak at %d (p=%.3f), want 2 or 3", best, bestP)
	}
}

func TestVQEAnsatzShape(t *testing.T) {
	c := VQEAnsatz(6, 3, 1)
	if c.NumQubits != 6 {
		t.Errorf("width %d", c.NumQubits)
	}
	ops := c.CountOps()
	// 3 layers x 5 chain CXs.
	if ops[circuit.OpCX] != 15 {
		t.Errorf("CX count %d, want 15", ops[circuit.OpCX])
	}
	// 3 layers x 6 x (ry+rz) + final 6 ry.
	if ops[circuit.OpRY] != 24 || ops[circuit.OpRZ] != 18 {
		t.Errorf("rotation counts ry=%d rz=%d", ops[circuit.OpRY], ops[circuit.OpRZ])
	}
	// Deterministic for a seed, different across seeds.
	if !VQEAnsatz(6, 3, 1).Equal(c) {
		t.Error("ansatz not deterministic")
	}
	if VQEAnsatz(6, 3, 2).Equal(c) {
		t.Error("ansatz ignores seed")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCounterfeitCoinFindsFake(t *testing.T) {
	const coins = 4
	const fake = 2
	c := CounterfeitCoin(coins, fake)
	st, err := sim.Run(circuit.Decompose(c))
	if err != nil {
		t.Fatal(err)
	}
	// The coin register collapses to exactly the fake coin's one-hot mask.
	p := 0.0
	for anc := 0; anc <= 1; anc++ {
		p += st.Probability(1<<fake | anc<<coins)
	}
	if p < 0.99 {
		t.Errorf("P(fake identified) = %g", p)
	}
}

func TestCounterfeitCoinPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range fake index accepted")
		}
	}()
	CounterfeitCoin(3, 5)
}

// TestQFTIsExactDFT validates the QFT generator against the DFT matrix on
// every basis state.
func TestQFTIsExactDFT(t *testing.T) {
	const n = 4
	const N = 1 << n
	fwd := circuit.Decompose(QFT(n))
	for x := 0; x < N; x++ {
		st := sim.MustNewState(n)
		st.SetAmplitude(0, 0)
		st.SetAmplitude(x, 1)
		if err := st.ApplyCircuit(fwd); err != nil {
			t.Fatal(err)
		}
		var overlap complex128
		for k := 0; k < N; k++ {
			ref := cmplxExp(2*math.Pi*float64(x*k)/float64(N)) / complex(math.Sqrt(float64(N)), 0)
			overlap += cmplxConj(ref) * st.Amplitude(k)
		}
		if math.Abs(real(overlap)*real(overlap)+imag(overlap)*imag(overlap)-1) > 1e-9 {
			t.Fatalf("QFT row %d does not match the DFT (|overlap|^2 = %g)", x, real(overlap)*real(overlap)+imag(overlap)*imag(overlap))
		}
	}
}

// TestInverseQFTInvertsQFT checks InverseQFT(n) composes with QFT(n) to
// the identity.
func TestInverseQFTInvertsQFT(t *testing.T) {
	const n = 4
	fwd := circuit.Decompose(QFT(n))
	inv := circuit.Decompose(InverseQFT(n))
	for basis := 0; basis < 1<<n; basis++ {
		st := sim.MustNewState(n)
		st.SetAmplitude(0, 0)
		st.SetAmplitude(basis, 1)
		want := st.Clone()
		st.ApplyCircuit(fwd)
		st.ApplyCircuit(inv)
		if !st.EqualUpToPhase(want, 1e-9) {
			t.Fatalf("QFT then InverseQFT does not restore basis %d", basis)
		}
	}
}

func cmplxExp(theta float64) complex128 {
	return complex(math.Cos(theta), math.Sin(theta))
}

func cmplxConj(z complex128) complex128 { return complex(real(z), -imag(z)) }
