package workloads

import (
	"testing"

	"codar/internal/circuit"
	"codar/internal/sim"
)

// TestSuiteEnvelope pins the paper's benchmark-suite shape: 71 circuits
// total, 68 of at most 16 qubits, 3 of exactly 36 qubits, widths spanning
// 3..36, and the largest circuit around 30k gates.
func TestSuiteEnvelope(t *testing.T) {
	s := Suite()
	if len(s) != 71 {
		t.Fatalf("suite has %d benchmarks, want 71", len(s))
	}
	small, big := 0, 0
	minQ, maxQ, maxGates := 1<<30, 0, 0
	for _, b := range s {
		if b.Qubits <= 16 {
			small++
		}
		if b.Qubits == 36 {
			big++
		}
		if b.Qubits < minQ {
			minQ = b.Qubits
		}
		if b.Qubits > maxQ {
			maxQ = b.Qubits
		}
		if n := b.Circuit().Len(); n > maxGates {
			maxGates = n
		}
	}
	if small != 68 || big != 3 {
		t.Errorf("small/big = %d/%d, want 68/3", small, big)
	}
	if minQ != 3 || maxQ != 36 {
		t.Errorf("width span %d..%d, want 3..36", minQ, maxQ)
	}
	if maxGates < 25000 || maxGates > 40000 {
		t.Errorf("largest circuit has %d gates, want ~30000", maxGates)
	}
}

func TestSuiteNamesUniqueAndOrdered(t *testing.T) {
	s := Suite()
	seen := map[string]bool{}
	for i, b := range s {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if i > 0 && s[i-1].Qubits > b.Qubits {
			t.Errorf("suite not ordered by qubits at %d (%s)", i, b.Name)
		}
	}
}

func TestSuiteCircuitsValidAndLowered(t *testing.T) {
	for _, b := range Suite() {
		c := b.Circuit()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if !circuit.IsLowered(c) {
			t.Errorf("%s: not lowered", b.Name)
		}
		if c.NumQubits != b.Qubits {
			t.Errorf("%s: width %d != declared %d", b.Name, c.NumQubits, b.Qubits)
		}
		if c.Len() == 0 {
			t.Errorf("%s: empty circuit", b.Name)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	s := Suite()
	for _, b := range []Benchmark{s[0], s[20], s[40], s[67]} {
		c1 := b.Circuit()
		c2 := b.Circuit()
		if !c1.Equal(c2) {
			t.Errorf("%s: non-deterministic builder", b.Name)
		}
	}
}

func TestSmallSuite(t *testing.T) {
	small := SmallSuite()
	if len(small) != 68 {
		t.Fatalf("SmallSuite has %d entries, want 68", len(small))
	}
	for _, b := range small {
		if b.Qubits > 16 {
			t.Errorf("%s exceeds 16 qubits", b.Name)
		}
	}
}

func TestFamousSeven(t *testing.T) {
	seven := FamousSeven()
	if len(seven) != 7 {
		t.Fatalf("FamousSeven has %d entries", len(seven))
	}
	for _, b := range seven {
		if b.Qubits > 9 {
			t.Errorf("%s (%d qubits) does not fit the 3x3 fidelity device", b.Name, b.Qubits)
		}
		if err := b.Circuit().Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("ghz_3")
	if err != nil || b.Qubits != 3 {
		t.Errorf("ByName(ghz_3) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// --- semantic spot checks of the generators (statevector level) ---

func TestGHZState(t *testing.T) {
	st, err := sim.Run(GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if p0, p15 := st.Probability(0), st.Probability(15); p0 < 0.49 || p15 < 0.49 {
		t.Errorf("GHZ probabilities %g/%g", p0, p15)
	}
}

func TestBVRecoversSecret(t *testing.T) {
	const n = 5
	const secret = 0b10110
	c := BV(n, secret)
	st, err := sim.Run(circuit.Decompose(c))
	if err != nil {
		t.Fatal(err)
	}
	// The input register must read the secret with certainty; the ancilla
	// is in |-> so both ancilla branches carry the secret pattern.
	p := 0.0
	for anc := 0; anc <= 1; anc++ {
		p += st.Probability(secret | anc<<n)
	}
	if p < 0.999 {
		t.Errorf("P(secret) = %g, want ~1", p)
	}
}

func TestWStateAmplitudes(t *testing.T) {
	const n = 4
	st, err := sim.Run(circuit.Decompose(WState(n)))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the n one-hot basis states carry probability 1/n each.
	for i := 0; i < st.Len(); i++ {
		ones := 0
		for b := 0; b < n; b++ {
			if i&(1<<b) != 0 {
				ones++
			}
		}
		p := st.Probability(i)
		if ones == 1 {
			if p < 1.0/float64(n)-1e-6 || p > 1.0/float64(n)+1e-6 {
				t.Errorf("one-hot state %d has P=%g, want %g", i, p, 1.0/float64(n))
			}
		} else if p > 1e-9 {
			t.Errorf("non-one-hot state %d has P=%g", i, p)
		}
	}
}

func TestCuccaroAdderAdds(t *testing.T) {
	// Compute a+b for all 2-bit operands: prepare inputs with X gates,
	// run the adder, check register b holds (a+b) mod 4 and cout the carry.
	const bits = 2
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			c := circuit.New(2*bits + 2)
			for i := 0; i < bits; i++ {
				if a&(1<<i) != 0 {
					c.X(1 + 2*i)
				}
				if b&(1<<i) != 0 {
					c.X(2 + 2*i)
				}
			}
			c.AppendAll(circuit.Decompose(CuccaroAdder(bits)))
			st, err := sim.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			sum := a + b
			// Expected basis state: cin=0, a unchanged, b=sum mod 4,
			// cout = carry.
			want := 0
			for i := 0; i < bits; i++ {
				if a&(1<<i) != 0 {
					want |= 1 << (1 + 2*i)
				}
				if sum&(1<<i) != 0 {
					want |= 1 << (2 + 2*i)
				}
			}
			if sum >= 4 {
				want |= 1 << (2*bits + 1)
			}
			if st.Probability(want) < 0.999 {
				t.Errorf("adder %d+%d: P(expected)=%g", a, b, st.Probability(want))
			}
		}
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	// Grover(3,1) marks |111>: one iteration boosts it well above uniform.
	st, err := sim.Run(circuit.Decompose(Grover(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if p := st.Probability(7); p < 0.6 {
		t.Errorf("P(|111>) = %g after one Grover iteration, want > 0.6", p)
	}
}

func TestDeutschJozsaSeparatesOracles(t *testing.T) {
	// Constant oracle: input register returns to |0...0>.
	stc, err := sim.Run(circuit.Decompose(DeutschJozsa(4, 0)))
	if err != nil {
		t.Fatal(err)
	}
	pZero := 0.0
	for anc := 0; anc <= 1; anc++ {
		pZero += stc.Probability(anc << 4)
	}
	if pZero < 0.999 {
		t.Errorf("constant DJ: P(zero) = %g", pZero)
	}
	// Balanced oracle: zero outcome has probability 0.
	stb, err := sim.Run(circuit.Decompose(DeutschJozsa(4, 0b1111)))
	if err != nil {
		t.Fatal(err)
	}
	pZero = stb.Probability(0) + stb.Probability(1<<4)
	if pZero > 1e-9 {
		t.Errorf("balanced DJ: P(zero) = %g, want 0", pZero)
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|0> = uniform superposition.
	st, err := sim.Run(circuit.Decompose(QFT(4)))
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 16
	for i := 0; i < st.Len(); i++ {
		if p := st.Probability(i); p < want-1e-9 || p > want+1e-9 {
			t.Fatalf("QFT|0> not uniform at %d: %g", i, p)
		}
	}
}

func TestGeneratorWidths(t *testing.T) {
	cases := []struct {
		c    *circuit.Circuit
		want int
	}{
		{QFT(7), 7},
		{GHZ(9), 9},
		{BV(6, 1), 7},
		{WState(5), 5},
		{CuccaroAdder(3), 8},
		{Grover(5, 1), 8},
		{DeutschJozsa(6, 3), 7},
		{Simon(4, 5), 8},
		{QAOAMaxCut(9, 2, 1), 9},
		{Ising(7, 3), 7},
		{HiddenShift(6, 5), 6},
		{RevNet(9, 50, 1), 9},
		{Random(9, 50, 40, 1), 9},
		{QuantumVolume(6, 4, 1), 6},
		{Multiplier(2), 8},
	}
	for _, tc := range cases {
		if tc.c.NumQubits != tc.want {
			t.Errorf("%s: width %d, want %d", tc.c.Name, tc.c.NumQubits, tc.want)
		}
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
		}
	}
}

func TestHiddenShiftPanicsOnOddWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd width accepted")
		}
	}()
	HiddenShift(5, 1)
}
