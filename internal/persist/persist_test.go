package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drain closes the log and waits for the writer goroutine to flush.
func drain(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// waitAppended polls until the log reports n appended records or times out.
func waitAppended(t *testing.T, l *Log, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Appended >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d appends (have %d)", n, l.Stats().Appended)
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := fmt.Sprintf(`{"depth":%d}`+"\n", i)
		want[k] = v
		l.Append(k, []byte(v))
	}
	waitAppended(t, l, 50)
	drain(t, l)

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer drain(t, re)
	if re.Loaded() != len(want) {
		t.Fatalf("Loaded = %d, want %d", re.Loaded(), len(want))
	}
	got := map[string]string{}
	re.Replay(func(k string, v []byte) { got[k] = string(v) })
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: got %q, want %q", k, got[k], v)
		}
	}
}

func TestLaterRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append("k", []byte("old"))
	l.Append("k", []byte("new"))
	waitAppended(t, l, 2)
	drain(t, l)

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer drain(t, re)
	if re.Loaded() != 1 {
		t.Fatalf("Loaded = %d, want 1", re.Loaded())
	}
	re.Replay(func(k string, v []byte) {
		if k != "k" || string(v) != "new" {
			t.Errorf("got %q=%q, want k=new", k, v)
		}
	})
}

func TestTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append("a", []byte("alpha"))
	l.Append("b", []byte("beta"))
	waitAppended(t, l, 2)
	drain(t, l)

	// Chop bytes off the tail, simulating a crash mid-append.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after truncation: %v", err)
	}
	defer drain(t, re)
	if re.Loaded() != 1 {
		t.Fatalf("Loaded = %d after torn tail, want 1", re.Loaded())
	}
	re.Replay(func(k string, v []byte) {
		if k != "a" || string(v) != "alpha" {
			t.Errorf("surviving record %q=%q, want a=alpha", k, v)
		}
	})
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append("a", []byte("alpha"))
	l.Append("b", []byte("beta"))
	waitAppended(t, l, 2)
	drain(t, l)

	// Flip a byte inside the second record's value.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer drain(t, re)
	if re.Loaded() != 1 {
		t.Fatalf("Loaded = %d after CRC corruption, want 1", re.Loaded())
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	if err := os.WriteFile(path, []byte("NOTALOG\ngarbage"), 0o644); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a file with a foreign magic header")
	}
}

func TestCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// 2 live keys, rewritten 10x each: 18 dead records > 2 live.
	for i := 0; i < 10; i++ {
		l.Append("x", []byte(fmt.Sprintf("x%d", i)))
		l.Append("y", []byte(fmt.Sprintf("y%d", i)))
	}
	waitAppended(t, l, 20)
	drain(t, l)
	before, _ := os.Stat(path)

	re, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer drain(t, re)
	if !re.Stats().Compacted {
		t.Fatal("expected compaction with 18 dead vs 2 live records")
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink file: %d -> %d", before.Size(), after.Size())
	}
	if re.Loaded() != 2 {
		t.Fatalf("Loaded = %d after compaction, want 2", re.Loaded())
	}
	re.Replay(func(k string, v []byte) {
		if (k == "x" && string(v) != "x9") || (k == "y" && string(v) != "y9") {
			t.Errorf("compacted %q=%q, want final generation", k, v)
		}
	})
}

func TestMaxBytesDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{MaxBytes: int64(len(magic)) + 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append("fits", []byte("ok"))
	waitAppended(t, l, 1)
	l.Append("too-big", make([]byte, 256))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && l.Stats().Dropped == 0 {
		time.Sleep(time.Millisecond)
	}
	st := l.Stats()
	drain(t, l)
	if st.Appended != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 appended / 1 dropped", st)
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	// magic + a record claiming a multi-GB value.
	buf := []byte(magic)
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:4], 1)
	binary.LittleEndian.PutUint32(lens[4:8], 3<<30)
	buf = append(buf, lens[:]...)
	buf = append(buf, 'k')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("seed: %v", err)
	}
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer drain(t, l)
	if l.Loaded() != 0 {
		t.Fatalf("Loaded = %d from implausible record, want 0", l.Loaded())
	}
}

func TestAppendAfterCloseDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	drain(t, l)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Append after Close panicked: %v", r)
		}
	}()
	// The channel is closed; select's default arm must absorb the send.
	for i := 0; i < 10; i++ {
		l.Append("late", []byte("x"))
	}
}

func TestOpenSharedMergesMembers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fleet")

	// First member writes two keys.
	a, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("OpenShared a: %v", err)
	}
	a.Append("k1", []byte("v1"))
	a.Append("k2", []byte("v2"))
	waitAppended(t, a, 2)
	drain(t, a)

	// Second member sees the first member's entries at boot and writes its
	// own, including an overwrite of k1 that must win for later members.
	b, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("OpenShared b: %v", err)
	}
	if b.Loaded() != 2 {
		t.Fatalf("member b loaded %d entries, want 2", b.Loaded())
	}
	b.Append("k1", []byte("v1-new"))
	b.Append("k3", []byte("v3"))
	waitAppended(t, b, 2)
	drain(t, b)

	// Members must not share append files.
	if a.Path() == b.Path() {
		t.Fatalf("members share append file %s", a.Path())
	}

	// A third member warms from the union, later files winning per key.
	c, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("OpenShared c: %v", err)
	}
	defer drain(t, c)
	got := map[string]string{}
	c.Replay(func(key string, val []byte) { got[key] = string(val) })
	want := map[string]string{"k1": "v1-new", "k2": "v2", "k3": "v3"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s = %q, want %q (got all: %v)", k, got[k], v, got)
		}
	}
}

func TestOpenSharedToleratesTornMember(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fleet")
	a, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("OpenShared: %v", err)
	}
	a.Append("good", []byte("entry"))
	waitAppended(t, a, 1)
	drain(t, a)

	// Tear the member file's tail: the next member still loads the intact
	// prefix.
	raw, err := os.ReadFile(a.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a.Path(), append(raw, 0x07, 0x00, 0x00), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("OpenShared after tear: %v", err)
	}
	defer drain(t, b)
	if b.Loaded() != 1 {
		t.Fatalf("loaded %d entries from torn member, want 1", b.Loaded())
	}
}
