package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzLogBytes builds an in-memory log image: the magic header followed by
// the given records (pairs of key, value).
func fuzzLogBytes(pairs ...string) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	for i := 0; i+1 < len(pairs); i += 2 {
		if _, err := appendRecord(&b, pairs[i], []byte(pairs[i+1])); err != nil {
			panic(err)
		}
	}
	return b.Bytes()
}

// FuzzPersistReplay opens arbitrary byte strings as a persistence log. The
// log format is explicitly allowed to be torn at the tail (crash mid-append)
// but must never panic or loop on any input, and whatever one Open accepts a
// second Open of the same file must accept identically — including when the
// first Open compacted the file in place.
//
// CI runs this with -fuzztime 30s; locally:
//
//	go test -run FuzzPersistReplay -fuzz FuzzPersistReplay -fuzztime 30s ./internal/persist/
func FuzzPersistReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("not a log at all"))
	f.Add(fuzzLogBytes("k1", "v1", "k2", "v2"))
	// Dead records outnumbering live ones trigger compaction at Open.
	f.Add(fuzzLogBytes("k", "v0", "k", "v1", "k", "v2"))
	// Torn tail: a record cut mid-payload.
	full := fuzzLogBytes("key", "value", "tail", "torn")
	f.Add(full[:len(full)-5])
	// Implausible length prefix right after an intact record.
	f.Add(append(fuzzLogBytes("k1", "v1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, Options{})
		if err != nil {
			return // bad magic etc.: rejection is fine, panicking is not
		}
		first := make(map[string]string, l.Loaded())
		l.Replay(func(key string, val []byte) { first[key] = string(val) })
		if len(first) != l.Loaded() {
			t.Fatalf("Replay visited %d entries, Loaded reports %d", len(first), l.Loaded())
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The file Open left behind (possibly compacted, possibly just the
		// appended magic) must replay to the exact same entries.
		l2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen rejected the file Open produced: %v", err)
		}
		defer l2.Close()
		second := make(map[string]string, l2.Loaded())
		l2.Replay(func(key string, val []byte) { second[key] = string(val) })
		if len(second) != len(first) {
			t.Fatalf("reopen loaded %d entries, first load had %d", len(second), len(first))
		}
		for k, v := range first {
			if second[k] != v {
				t.Fatalf("entry %q changed across reopen: %q -> %q", k, v, second[k])
			}
		}
	})
}
