// Package persist implements the result-cache warm-start log: an
// append-only file of (cache key, response bytes) records that the codard
// service replays at boot, so a restart serves its hot circuits from cache
// instead of recomputing every mapping cold.
//
// The format is deliberately dumb — length-prefixed records with a per-record
// CRC behind a magic header — because the log is a cache, not a database:
//
//   - Appends are asynchronous and lossy under pressure (a full write queue
//     drops the entry and counts it; correctness never depends on the log).
//   - Loading tolerates a torn tail: the first record that fails its length
//     or CRC check ends the replay, which is exactly the crash-mid-append
//     case. Everything before it is intact by CRC.
//   - Re-appended keys are deduplicated at load (last record wins), and a
//     log carrying more dead records than live ones is compacted in place
//     (rewrite + rename) before appending resumes.
package persist

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// magic identifies (and versions) the log format.
const magic = "CODARP1\n"

// DefaultMaxBytes bounds log growth: appends that would push the file past
// it are dropped (and counted). 256 MB holds ~100k typical mapped-circuit
// responses — far beyond the in-memory cache they warm.
const DefaultMaxBytes = 256 << 20

// maxRecordBytes rejects absurd length prefixes at load time, so a corrupt
// length cannot make the loader allocate gigabytes.
const maxRecordBytes = 64 << 20

// writeQueueDepth is the async append channel capacity. Beyond it, appends
// drop: the serving path must never block on disk.
const writeQueueDepth = 256

// Log is an open warm-start log. Open loads the existing entries; Append
// writes new ones asynchronously; Close flushes and syncs. All methods are
// safe for concurrent use.
type Log struct {
	path     string
	maxBytes int64

	mu      sync.Mutex
	entries map[string][]byte // loaded at Open, in insertion order via order
	order   []string

	f    *os.File
	w    *bufio.Writer
	size int64

	ch   chan record
	done chan struct{}

	closeMu   sync.RWMutex // guards closed vs. in-flight Append sends
	closed    bool
	closeOnce sync.Once

	statsMu   sync.Mutex
	appended  uint64
	dropped   uint64
	compacted bool
}

type record struct {
	key string
	val []byte
}

// Options tunes Open.
type Options struct {
	// MaxBytes bounds the file size; appends beyond it drop. 0 selects
	// DefaultMaxBytes.
	MaxBytes int64
}

// Open opens (creating if needed) the log at path, loads every intact
// record, compacts the file when dead records outnumber live ones, and
// starts the background append writer.
func Open(path string, opts Options) (*Log, error) {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	l := &Log{
		path:     path,
		maxBytes: maxBytes,
		entries:  make(map[string][]byte),
		ch:       make(chan record, writeQueueDepth),
		done:     make(chan struct{}),
	}
	dead, err := l.load()
	if err != nil {
		return nil, err
	}
	if dead > len(l.entries) {
		if err := l.compact(); err != nil {
			return nil, err
		}
		l.compacted = true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.size = st.Size()
	l.w = bufio.NewWriter(f)
	if l.size == 0 {
		if _, err := l.w.WriteString(magic); err != nil {
			f.Close()
			return nil, err
		}
		l.size = int64(len(magic))
	}
	go l.writer()
	return l, nil
}

// SharedExt is the member-file extension of a shared persist directory.
const SharedExt = ".plog"

// OpenShared opens a stateless-fleet member log inside dir: every existing
// member file ("*.plog", lexical order, later files win per key) is loaded
// for replay — so a freshly booted backend warms from the whole fleet's
// history — while appends go to this member's own uniquely named file.
// One file per process means no cross-process write coordination: members
// never append to each other's files, and a torn tail in one member's file
// costs only that file's tail. Shared logs skip compaction (a member must
// not rewrite history other members may still be loading).
func OpenShared(dir string, opts Options) (*Log, error) {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: shared dir: %w", err)
	}
	var suffix [6]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		return nil, fmt.Errorf("persist: member name: %w", err)
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "member"
	}
	// The creation-time prefix is zero-padded so lexical member order is
	// chronological: "later files win per key" really means later-created.
	path := filepath.Join(dir, fmt.Sprintf("%020d-%s-%d-%s%s", time.Now().UnixNano(), host, os.Getpid(), hex.EncodeToString(suffix[:]), SharedExt))
	l := &Log{
		path:     path,
		maxBytes: maxBytes,
		entries:  make(map[string][]byte),
		ch:       make(chan record, writeQueueDepth),
		done:     make(chan struct{}),
	}
	members, err := filepath.Glob(filepath.Join(dir, "*"+SharedExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(members)
	for _, m := range members {
		if _, err := l.loadFrom(m); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	if _, err := l.w.WriteString(magic); err != nil {
		f.Close()
		return nil, err
	}
	l.size = int64(len(magic))
	go l.writer()
	return l, nil
}

// load reads every intact record from the log's own file into l.entries,
// returning the count of dead (overwritten) records.
func (l *Log) load() (dead int, err error) {
	return l.loadFrom(l.path)
}

// loadFrom reads every intact record from one file into l.entries (later
// records win per key). A missing file is an empty log.
func (l *Log) loadFrom(path string) (dead int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF {
			return 0, nil // empty file: treat as fresh
		}
		return 0, fmt.Errorf("persist: %s: reading header: %w", path, err)
	}
	if string(head) != magic {
		return 0, fmt.Errorf("persist: %s: not a codard persistence log (bad magic)", path)
	}
	for {
		key, val, err := readRecord(r)
		if err != nil {
			// A torn or corrupt tail ends the replay; everything already
			// loaded is CRC-intact. io.EOF is the clean end.
			return dead, nil
		}
		if _, exists := l.entries[key]; exists {
			dead++
		} else {
			l.order = append(l.order, key)
		}
		l.entries[key] = val
	}
}

// readRecord reads one length-prefixed, CRC-checked record.
func readRecord(r *bufio.Reader) (key string, val []byte, err error) {
	var lens [8]byte
	if _, err := io.ReadFull(r, lens[:]); err != nil {
		return "", nil, err
	}
	keyLen := binary.LittleEndian.Uint32(lens[0:4])
	valLen := binary.LittleEndian.Uint32(lens[4:8])
	if keyLen == 0 || keyLen > maxRecordBytes || valLen > maxRecordBytes {
		return "", nil, fmt.Errorf("persist: implausible record lengths %d/%d", keyLen, valLen)
	}
	buf := make([]byte, int(keyLen)+int(valLen))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return "", nil, err
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(buf) {
		return "", nil, fmt.Errorf("persist: record CRC mismatch")
	}
	return string(buf[:keyLen]), buf[keyLen:], nil
}

// appendRecord writes one record through w and returns its encoded size.
func appendRecord(w io.Writer, key string, val []byte) (int64, error) {
	var lens [8]byte
	binary.LittleEndian.PutUint32(lens[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:8], uint32(len(val)))
	if _, err := w.Write(lens[:]); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(val)
	if _, err := io.WriteString(w, key); err != nil {
		return 0, err
	}
	if _, err := w.Write(val); err != nil {
		return 0, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return 0, err
	}
	return int64(8 + len(key) + len(val) + 4), nil
}

// compact rewrites the file with only the live entries (tmp + rename, so a
// crash mid-compaction leaves either the old or the new file, never a torn
// one).
func (l *Log) compact() error {
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(magic); err != nil {
		f.Close()
		return err
	}
	for _, key := range l.order {
		if _, err := appendRecord(w, key, l.entries[key]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, l.path)
}

// Replay calls fn for every loaded entry in original insertion order. The
// value slices are owned by the log's load buffer; treat them as read-only.
func (l *Log) Replay(fn func(key string, val []byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, key := range l.order {
		fn(key, l.entries[key])
	}
}

// Loaded returns the number of entries replayable from the opened file.
func (l *Log) Loaded() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append enqueues one record for background write. It never blocks: when
// the write queue is full (or the log was closed), the record is dropped
// and counted — the log warms restarts, it is not a durability contract.
func (l *Log) Append(key string, val []byte) {
	l.closeMu.RLock()
	defer l.closeMu.RUnlock()
	if !l.closed {
		select {
		case l.ch <- record{key: key, val: val}:
			return
		default:
		}
	}
	l.statsMu.Lock()
	l.dropped++
	l.statsMu.Unlock()
}

// writer drains the append queue onto disk.
func (l *Log) writer() {
	defer close(l.done)
	for rec := range l.ch {
		n := int64(8 + len(rec.key) + len(rec.val) + 4)
		if l.size+n > l.maxBytes {
			l.statsMu.Lock()
			l.dropped++
			l.statsMu.Unlock()
			continue
		}
		if _, err := appendRecord(l.w, rec.key, rec.val); err != nil {
			l.statsMu.Lock()
			l.dropped++
			l.statsMu.Unlock()
			continue
		}
		l.size += n
		l.statsMu.Lock()
		l.appended++
		l.statsMu.Unlock()
	}
	l.w.Flush()
	l.f.Sync()
	l.f.Close()
}

// Close flushes the pending appends, syncs and closes the file. Appends
// after Close drop (counted). Close is idempotent.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		l.closeMu.Lock()
		l.closed = true
		close(l.ch)
		l.closeMu.Unlock()
	})
	<-l.done
	return nil
}

// Stats is a point-in-time view of the log's counters.
type Stats struct {
	Path      string
	Loaded    int
	Appended  uint64
	Dropped   uint64
	Compacted bool
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return Stats{
		Path:      l.path,
		Loaded:    l.Loaded(),
		Appended:  l.appended,
		Dropped:   l.dropped,
		Compacted: l.compacted,
	}
}
