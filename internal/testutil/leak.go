// Package testutil holds shared test helpers. The flagship is the
// goroutine-leak check applied to every cancellation test in the tree
// (service, pool, portfolio): cancellation plumbing that strands a worker
// goroutine passes ordinary assertions — the result is still correct — and
// only shows up as unbounded goroutine growth in production. The check
// snapshots the goroutine set before the test body and fails the test if,
// after a bounded settling period, goroutines born during the test are
// still alive, printing their stacks.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakSettle is how long CheckGoroutineLeaks waits for goroutines to drain
// before declaring a leak. Legitimate teardown (pool workers observing a
// closed channel, HTTP keep-alive connections unwinding) finishes in
// microseconds; a stranded goroutine never does.
const leakSettle = 2 * time.Second

// CheckGoroutineLeaks snapshots the current goroutine stacks and registers
// a cleanup that fails t if goroutines created during the test are still
// running once the test body finishes (after a bounded settling period).
// Call it first thing in the test:
//
//	func TestCancelSomething(t *testing.T) {
//	    testutil.CheckGoroutineLeaks(t)
//	    ...
//	}
//
// Runtime-internal and testing-harness goroutines are ignored; everything
// else present at cleanup but absent at entry is reported with its stack.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	before := goroutineSet()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettle)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) born during the test are still running after %v:\n%s",
			len(leaked), leakSettle, strings.Join(leaked, "\n---\n"))
	})
}

// goroutineSet returns the multiset of live goroutine signatures keyed by
// their full stack header (function chain), with counts.
func goroutineSet() map[string]int {
	set := make(map[string]int)
	for _, g := range stacks() {
		set[signature(g)]++
	}
	return set
}

// leakedSince returns the stacks of goroutines whose signature count now
// exceeds the before-snapshot count — goroutines born during the test.
func leakedSince(before map[string]int) []string {
	seen := make(map[string]int)
	var leaked []string
	for _, g := range stacks() {
		sig := signature(g)
		if ignorable(g) {
			continue
		}
		seen[sig]++
		if seen[sig] > before[sig] {
			leaked = append(leaked, g)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// stacks dumps every goroutine's stack and splits the dump into one string
// per goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	parts := strings.Split(string(buf), "\n\n")
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

// signature reduces a goroutine stack to a comparable identity: its state
// and frame function names, without goroutine ids, addresses or line
// numbers (which differ across otherwise-identical goroutines).
func signature(g string) string {
	var b strings.Builder
	for i, line := range strings.Split(g, "\n") {
		line = strings.TrimSpace(line)
		if i == 0 {
			// "goroutine 12 [chan receive]:" → keep only the state.
			if k := strings.IndexByte(line, '['); k >= 0 {
				fmt.Fprintf(&b, "%s|", line[k:])
			}
			continue
		}
		// Frame lines alternate "pkg.Func(args)" and "\tfile:line +0x..";
		// keep only the function lines.
		if strings.HasPrefix(line, "created by ") || !strings.Contains(line, ":") {
			b.WriteString(line)
			b.WriteByte('|')
		}
	}
	return b.String()
}

// ignorable reports whether a goroutine belongs to the runtime or the test
// harness rather than code under test.
func ignorable(g string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.Main(",
		"testing.tRunner(",
		"runtime.goexit",
		"runtime.MutexProfile",
		"runtime.gc",
		"runtime.ReadTrace",
		"signal.signal_recv",
		"runtime.ensureSigM",
		"testutil.CheckGoroutineLeaks",
		"os/signal.loop",
	} {
		if strings.Contains(g, frame) {
			// Only ignore harness/runtime roots, identified by their first
			// frame or creator; user goroutines that merely call into the
			// runtime still show their own frames and are kept.
			return true
		}
	}
	return false
}
