package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestNoLeakPasses(t *testing.T) {
	CheckGoroutineLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestTransientGoroutineSettles(t *testing.T) {
	CheckGoroutineLeaks(t)
	// A goroutine still running at cleanup time but exiting within the
	// settling window must not be reported.
	go func() { time.Sleep(50 * time.Millisecond) }()
}

// TestLeakDetected drives the detector internals against a deliberately
// stranded goroutine, so the failure is observed rather than failing this
// test.
func TestLeakDetected(t *testing.T) {
	before := goroutineSet()
	stop := make(chan struct{})
	go func() { <-stop }() // stranded until we release it below
	time.Sleep(10 * time.Millisecond)

	leaked := leakedSince(before)
	if len(leaked) == 0 {
		close(stop)
		t.Fatal("stranded goroutine not detected")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestLeakDetected") {
			found = true
		}
	}
	if !found {
		close(stop)
		t.Fatalf("leak report does not name the leaking site:\n%s", strings.Join(leaked, "\n---\n"))
	}
	close(stop)
}
